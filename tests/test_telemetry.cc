// Telemetry primitives: the Greenwald-Khanna streaming quantile's rank
// guarantee (vs the exact percentiles LinearHistogram computes from its
// raw sample), merge semantics, and the registry's probe sampling.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "metrics/histogram.h"
#include "telemetry/metric.h"
#include "telemetry/registry.h"

using namespace ntier;
using sim::Duration;
using sim::Time;
using telemetry::GkQuantile;
using telemetry::Registry;

namespace {

// GK contract: quantile(q) returns a sample whose rank lies within
// eps*n of q*n. Verified against the sorted sample: the estimate must
// fall between the values at ranks q*n -/+ eps*n (inclusive, +1 sample
// of slack for rank-rounding at the extremes).
void expect_rank_bound(const std::vector<double>& sorted, const GkQuantile& gk,
                       double q) {
  const auto n = static_cast<double>(sorted.size());
  const double slack = gk.merged_eps() * n + 1.0;
  const auto lo = static_cast<std::size_t>(std::max(0.0, q * n - slack));
  const auto hi = static_cast<std::size_t>(
      std::min(n - 1.0, q * n + slack));
  const double est = gk.quantile(q);
  EXPECT_GE(est, sorted[lo]) << "q=" << q;
  EXPECT_LE(est, sorted[hi]) << "q=" << q;
}

// Deterministic non-sorted feeding order: i -> (i * stride) mod n with
// gcd(stride, n) = 1 is a permutation of 0..n-1.
std::vector<double> scrambled_iota(std::size_t n, std::size_t stride) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<double>((i * stride) % n);
  return v;
}

// The paper's multi-modal latency shape: a dense sub-200 ms body with
// modes near 3/6/9 s (the 1/2/3-retransmission peaks). Exactly the
// distribution that defeats curve-fitting estimators.
std::vector<double> multimodal_latencies(std::size_t n) {
  std::vector<double> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = i % 1000;
    if (c < 900) {
      v.push_back(100.0 + static_cast<double>(i % 37));
    } else if (c < 970) {
      v.push_back(3000.0 + static_cast<double>(i % 23));
    } else if (c < 990) {
      v.push_back(6000.0 + static_cast<double>(i % 11));
    } else {
      v.push_back(9000.0 + static_cast<double>(i % 7));
    }
  }
  return v;
}

}  // namespace

TEST(GkQuantile, EmptyReturnsZero) {
  GkQuantile gk;
  EXPECT_EQ(gk.count(), 0u);
  EXPECT_DOUBLE_EQ(gk.quantile(0.5), 0.0);
}

TEST(GkQuantile, SingleAndExtremeQuantiles) {
  GkQuantile gk;
  gk.record(7.5);
  for (double q : {0.0, 0.5, 1.0}) EXPECT_DOUBLE_EQ(gk.quantile(q), 7.5);
  gk.record(2.0);
  EXPECT_DOUBLE_EQ(gk.quantile(0.0), 2.0);
  EXPECT_DOUBLE_EQ(gk.quantile(1.0), 7.5);
}

TEST(GkQuantile, RankBoundOnUniformStream) {
  const std::size_t n = 20000;
  GkQuantile gk(0.005);
  for (double x : scrambled_iota(n, 7919)) gk.record(x);
  ASSERT_EQ(gk.count(), n);
  std::vector<double> sorted(n);
  for (std::size_t i = 0; i < n; ++i) sorted[i] = static_cast<double>(i);
  for (double q : {0.01, 0.1, 0.5, 0.9, 0.99, 0.999})
    expect_rank_bound(sorted, gk, q);
}

TEST(GkQuantile, RankBoundOnMultimodalVsExactHistogram) {
  auto samples = multimodal_latencies(30000);
  GkQuantile gk(0.005);
  metrics::LinearHistogram hist(Duration::millis(100), Duration::seconds(30));
  for (double ms : samples) {
    gk.record(ms);
    hist.record(Duration::from_seconds(ms / 1000.0));
  }
  auto sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  for (double q : {0.5, 0.9, 0.99, 0.995, 0.999})
    expect_rank_bound(sorted, gk, q);

  // Against the exact (raw-sample) histogram percentiles: in the dense
  // body the two must agree to within the error the rank bound allows
  // (the p50 neighbourhood spans values 100..136 ms).
  EXPECT_NEAR(gk.quantile(0.5), hist.percentile(50.0).to_millis(), 40.0);
  // p99 sits inside the 3 s retransmission mode for both estimators.
  EXPECT_NEAR(gk.quantile(0.99), hist.percentile(99.0).to_millis(), 150.0);
}

TEST(GkQuantile, CompressionBoundsMemory) {
  const std::size_t n = 50000;
  GkQuantile gk(0.005);
  for (double x : scrambled_iota(n, 9973)) gk.record(x);
  // O((1/eps) * log(eps*n)) tuples, not O(n).
  EXPECT_LT(gk.tuple_count(), 5000u);
  EXPECT_GT(gk.tuple_count(), 10u);
}

TEST(GkQuantile, MergeSumsEpsAndAnswersOverUnion) {
  const std::size_t n = 10000;
  GkQuantile a(0.01);
  GkQuantile b(0.01);
  for (double x : scrambled_iota(n, 7919)) a.record(x);
  for (double x : scrambled_iota(n, 7919)) b.record(x + static_cast<double>(n));
  a.merge(b);
  EXPECT_EQ(a.count(), 2 * n);
  EXPECT_NEAR(a.merged_eps(), 0.02, 1e-12);
  std::vector<double> sorted(2 * n);
  for (std::size_t i = 0; i < 2 * n; ++i) sorted[i] = static_cast<double>(i);
  for (double q : {0.1, 0.5, 0.9, 0.99}) expect_rank_bound(sorted, a, q);
}

TEST(Registry, CumulativeProbeWritesPerSecondRates) {
  Registry reg(Duration::millis(50));
  std::uint64_t events = 0;
  reg.add_probe("sim.events", Registry::ProbeKind::kCumulative,
                [&] { return static_cast<double>(events); });
  events = 5;
  reg.sample(Time::origin(), 0.05);
  events = 5 + 12;
  reg.sample(Time::origin() + Duration::millis(50), 0.05);
  reg.sample(Time::origin() + Duration::millis(100), 0.05);  // no new events
  const auto& s = *reg.find_series("sim.events");
  EXPECT_DOUBLE_EQ(s.value_at(0), 5.0 / 0.05);
  EXPECT_DOUBLE_EQ(s.value_at(1), 12.0 / 0.05);
  EXPECT_DOUBLE_EQ(s.value_at(2), 0.0);
}

TEST(Registry, GaugeProbeWritesLevelsVerbatim) {
  Registry reg(Duration::millis(50));
  double depth = 3.0;
  reg.add_probe("sim.heap_depth", Registry::ProbeKind::kGauge,
                [&] { return depth; });
  reg.sample(Time::origin(), 0.05);
  depth = 17.0;
  reg.sample(Time::origin() + Duration::millis(50), 0.05);
  const auto& s = *reg.find_series("sim.heap_depth");
  EXPECT_DOUBLE_EQ(s.value_at(0), 3.0);
  EXPECT_DOUBLE_EQ(s.value_at(1), 17.0);
}

TEST(Registry, SnapshotIsNameSortedAndMarksProbeTotals) {
  Registry reg;
  reg.counter("web.drops").add(3);
  reg.gauge("breaker.state").set(2.0);
  std::uint64_t total = 41;
  reg.add_probe("sim.events", Registry::ProbeKind::kCumulative,
                [&] { return static_cast<double>(total); });
  total = 42;
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].first, "breaker.state");
  EXPECT_DOUBLE_EQ(snap[0].second, 2.0);
  EXPECT_EQ(snap[1].first, "sim.events.total");
  EXPECT_DOUBLE_EQ(snap[1].second, 42.0);  // probe totals read fn() now
  EXPECT_EQ(snap[2].first, "web.drops");
  EXPECT_DOUBLE_EQ(snap[2].second, 3.0);
}

TEST(Registry, CreateOrGetReturnsStableInstruments) {
  Registry reg;
  auto& c = reg.counter("x");
  c.add(2);
  EXPECT_EQ(&reg.counter("x"), &c);
  EXPECT_EQ(reg.counter("x").value(), 2u);
  auto& q = reg.quantile("lat", 0.01);
  q.record(1.0);
  EXPECT_EQ(&reg.quantile("lat"), &q);
  EXPECT_DOUBLE_EQ(reg.quantile("lat").eps(), 0.01);
  EXPECT_TRUE(reg.has_series("x") == false);
  reg.series("s").set(Time::origin(), 1.0);
  EXPECT_TRUE(reg.has_series("s"));
}
