// Tests for QuantileTimeline, the run validator, and CSV run export.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/experiment.h"
#include "core/export.h"
#include "core/scenarios.h"
#include "core/validation.h"
#include "metrics/quantile_timeline.h"

namespace ntier {
namespace {

using sim::Duration;
using sim::Time;

// --- QuantileTimeline ------------------------------------------------------

TEST(QuantileTimeline, PerWindowQuantiles) {
  metrics::QuantileTimeline q({50.0, 99.0}, Duration::seconds(1));
  // Window 0: 1..100 ms.
  for (int i = 1; i <= 100; ++i)
    q.record(Time::from_seconds(0.5), Duration::millis(i));
  // Window 1: constant 7 ms.
  for (int i = 0; i < 10; ++i)
    q.record(Time::from_seconds(1.5), Duration::millis(7));
  q.flush();
  EXPECT_NEAR(q.series(50.0).value_at(0), 50.0, 1.5);
  EXPECT_NEAR(q.series(99.0).value_at(0), 99.0, 1.5);
  EXPECT_NEAR(q.series(50.0).value_at(1), 7.0, 0.01);
}

TEST(QuantileTimeline, EmptyWindowStaysZero) {
  metrics::QuantileTimeline q({50.0}, Duration::seconds(1));
  q.record(Time::from_seconds(0.1), Duration::millis(5));
  q.record(Time::from_seconds(2.1), Duration::millis(9));  // skips window 1
  q.flush();
  EXPECT_NEAR(q.series(50.0).value_at(0), 5.0, 0.01);
  EXPECT_DOUBLE_EQ(q.series(50.0).value_at(1), 0.0);
  EXPECT_NEAR(q.series(50.0).value_at(2), 9.0, 0.01);
}

TEST(QuantileTimeline, UnknownQuantileThrows) {
  metrics::QuantileTimeline q({50.0}, Duration::seconds(1));
  EXPECT_THROW((void)q.series(99.0), std::out_of_range);
}

TEST(QuantileTimeline, FlushIsIdempotent) {
  metrics::QuantileTimeline q({50.0}, Duration::seconds(1));
  q.record(Time::from_seconds(0.1), Duration::millis(5));
  q.flush();
  q.flush();
  EXPECT_NEAR(q.series(50.0).value_at(0), 5.0, 0.01);
}

TEST(QuantileTimeline, CollectorP99SpikesDuringMillibottleneck) {
  auto cfg = core::scenarios::fig3_consolidation_sync();
  cfg.duration = Duration::seconds(12);
  auto sys = core::run_system(cfg);
  sys->latency().flush();
  const auto& p99 = sys->latency().latency_quantile_series(99.0);
  // Quiet early second vs the burst at ~6.5-7.5 s.
  EXPECT_LT(p99.value_at(1), 50.0);
  double spike = 0.0;
  for (std::size_t i = 6; i <= 11; ++i) spike = std::max(spike, p99.value_at(i));
  EXPECT_GT(spike, 500.0);
}

// --- validate_run ----------------------------------------------------------

TEST(Validation, QuietRunPasses) {
  core::ExperimentConfig cfg;
  cfg.workload.sessions = 3000;
  cfg.duration = Duration::seconds(30);
  cfg.workload.measure_from = Time::from_seconds(5);
  auto sys = core::run_system(cfg);
  const auto report = core::validate_run(*sys);
  EXPECT_TRUE(report.all_ok) << report.to_string();
  EXPECT_GE(report.checks.size(), 5u);
}

TEST(Validation, BottleneckedRunStillConserves) {
  auto cfg = core::scenarios::fig3_consolidation_sync();
  cfg.workload.measure_from = Time::from_seconds(2);
  auto sys = core::run_system(cfg);
  const auto report = core::validate_run(*sys, 0.15);
  EXPECT_TRUE(report.all_ok) << report.to_string();
}

TEST(Validation, ReportFormatsChecks) {
  core::ExperimentConfig cfg;
  cfg.workload.sessions = 500;
  cfg.duration = Duration::seconds(10);
  auto sys = core::run_system(cfg);
  const auto report = core::validate_run(*sys);
  const auto s = report.to_string();
  EXPECT_NE(s.find("closed-loop"), std::string::npos);
  EXPECT_NE(s.find("flow balance"), std::string::npos);
}

// --- export_run_csv --------------------------------------------------------

TEST(Export, WritesAllArtifacts) {
  core::ExperimentConfig cfg;
  cfg.workload.sessions = 500;
  cfg.duration = Duration::seconds(5);
  auto sys = core::run_system(cfg);
  const std::string dir = ::testing::TempDir();
  const auto result = core::export_run_csv(*sys, dir);
  EXPECT_TRUE(result.ok);
  // series, histogram, vlrt, latency_q, manifest.
  ASSERT_EQ(result.files_written.size(), 5u);
  bool has_manifest = false;
  for (const auto& f : result.files_written)
    if (f.find("manifest.json") != std::string::npos) has_manifest = true;
  EXPECT_TRUE(has_manifest);
  // series.csv has a header with every sampler series.
  std::ifstream in(dir + "/series.csv");
  std::string header;
  std::getline(in, header);
  EXPECT_NE(header.find("apache.queue"), std::string::npos);
  EXPECT_NE(header.find("tomcat.cpu"), std::string::npos);
  for (const auto& f : result.files_written) std::remove(f.c_str());
}

TEST(Export, FailsOnMissingDirectory) {
  core::ExperimentConfig cfg;
  cfg.workload.sessions = 100;
  cfg.duration = Duration::seconds(2);
  auto sys = core::run_system(cfg);
  const auto result = core::export_run_csv(*sys, "/no/such/dir/xyz");
  EXPECT_FALSE(result.ok);
}

}  // namespace
}  // namespace ntier
