// Property tests for the hierarchical timing-wheel front-end: the
// EventQueue must be observationally identical to a (when, seq)
// priority queue no matter how events distribute across wheel levels,
// the beyond-horizon heap fallback, and the per-tick batch. The
// randomized schedules here deliberately mix same-tick bursts,
// far-future pushes that cascade through every level, cancels of
// events in all three residences, and cancel-after-fire no-ops, and
// check size()/next_time() exactness after every operation.
#include <gtest/gtest.h>

#include <cstdint>
#include <iterator>
#include <limits>
#include <memory>
#include <queue>
#include <vector>

#include "sim/event_queue.h"
#include "sim/random.h"
#include "sim/time.h"

namespace {

using ntier::sim::EventHandle;
using ntier::sim::EventQueue;
using ntier::sim::Rng;
using ntier::sim::Time;

// Reference model: a lazy-deletion priority queue popping strictly in
// (when, seq) order — the order the pre-wheel implementations used and
// the determinism invariant the wheel must preserve.
class Oracle {
 public:
  std::shared_ptr<bool> push(std::int64_t when, std::uint64_t id) {
    auto dead = std::make_shared<bool>(false);
    heap_.push(Entry{when, next_seq_++, id, dead});
    ++live_;
    return dead;
  }

  void cancel(const std::shared_ptr<bool>& dead) {
    if (*dead) return;
    *dead = true;
    --live_;
  }

  // Exact earliest live instant; INT64_MAX when empty.
  std::int64_t next_time() {
    skip_dead();
    return heap_.empty() ? std::numeric_limits<std::int64_t>::max()
                         : heap_.top().when;
  }

  // Pops every live entry at the earliest instant, in seq order.
  std::vector<std::uint64_t> pop_tick(std::int64_t* when_out) {
    std::vector<std::uint64_t> ids;
    skip_dead();
    if (heap_.empty()) return ids;
    *when_out = heap_.top().when;
    while (!heap_.empty() && heap_.top().when == *when_out) {
      if (!*heap_.top().dead) {
        *heap_.top().dead = true;  // fired: outstanding handles go stale
        ids.push_back(heap_.top().id);
        --live_;
      }
      heap_.pop();
    }
    return ids;
  }

  std::size_t live() const { return live_; }

 private:
  struct Entry {
    std::int64_t when;
    std::uint64_t seq;
    std::uint64_t id;
    std::shared_ptr<bool> dead;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  void skip_dead() {
    while (!heap_.empty() && *heap_.top().dead) heap_.pop();
  }

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
};

TEST(WheelProperty, MatchesPriorityQueueOracleAcrossLevels) {
  // Random op mix whose delay menu hits every wheel level (0..3), the
  // exact level boundaries, and the beyond-horizon (>= 2^32 us) heap
  // fallback. Draining goes through run_tick — the batched path the
  // Simulation drives — and time only moves forward, as under the
  // Simulation facade.
  EventQueue q;
  Oracle oracle;
  Rng rng(0x5eed);
  std::vector<EventHandle> handles;
  std::vector<std::shared_ptr<bool>> oracle_handles;
  std::vector<std::uint64_t> fired;
  std::int64_t now = 0;
  std::uint64_t next_id = 0;

  static constexpr std::int64_t kDelays[] = {
      0,         1,          3,          200,        255,
      256,       257,        4096,       65535,      65536,
      65537,     1 << 20,    1ll << 24,  (1ll << 24) + 5,
      1ll << 31, 1ll << 32,  (1ll << 32) + 9,        1ll << 33};

  for (int step = 0; step < 30000; ++step) {
    const std::uint64_t op = rng.next_u64() % 10;
    if (op < 6) {  // push (same-tick duplicates arise from delay 0/1)
      const std::int64_t when =
          now + kDelays[rng.next_u64() % std::size(kDelays)];
      const std::uint64_t id = next_id++;
      handles.push_back(q.push(Time::from_micros(when), [id, &fired] {
        fired.push_back(id);
      }));
      oracle_handles.push_back(oracle.push(when, id));
    } else if (op < 8 && !handles.empty()) {  // cancel a random handle
      const std::size_t i = rng.next_u64() % handles.size();
      ASSERT_EQ(handles[i].pending(), !*oracle_handles[i]);
      handles[i].cancel();
      oracle.cancel(oracle_handles[i]);
      // Idempotent, and a no-op after the event fired.
      handles[i].cancel();
      EXPECT_FALSE(handles[i].pending());
    } else {  // drain one whole tick through the batched path
      ASSERT_EQ(q.size(), oracle.live());
      ASSERT_EQ(q.empty(), oracle.live() == 0);
      std::int64_t owhen = 0;
      const std::vector<std::uint64_t> want = oracle.pop_tick(&owhen);
      if (want.empty()) {
        EXPECT_EQ(q.next_time(), Time::max());
        EXPECT_EQ(q.run_tick(), 0u);
      } else {
        // next_time() must surface the exact instant even while the
        // earliest event still sits in a coarse, not-yet-cascaded slot.
        ASSERT_EQ(q.next_time().count_micros(), owhen);
        fired.clear();
        ASSERT_EQ(q.run_tick(), want.size());
        ASSERT_EQ(fired, want);
        now = owhen;  // the facade never schedules into the past
      }
    }
  }

  // Drain both to empty and compare the complete remaining pop order.
  for (;;) {
    ASSERT_EQ(q.size(), oracle.live());
    std::int64_t owhen = 0;
    const std::vector<std::uint64_t> want = oracle.pop_tick(&owhen);
    if (want.empty()) break;
    ASSERT_EQ(q.next_time().count_micros(), owhen);
    fired.clear();
    ASSERT_EQ(q.run_tick(), want.size());
    ASSERT_EQ(fired, want);
  }
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.next_time(), Time::max());
}

TEST(WheelProperty, SingleSteppingMatchesOracle) {
  // The same schedule shape driven through pop_and_run — the
  // single-stepping path with no batching — including pushes at times
  // the queue has already executed past (legal through the raw API).
  EventQueue q;
  Oracle oracle;
  Rng rng(4242);
  std::vector<std::uint64_t> fired;
  std::uint64_t next_id = 0;

  for (int step = 0; step < 20000; ++step) {
    const std::uint64_t op = rng.next_u64() % 10;
    if (op < 6) {
      // Absolute times from a small window: many land before the
      // current wheel tick and must still fire in (when, seq) order.
      const std::int64_t when =
          static_cast<std::int64_t>(rng.next_u64() % 512);
      const std::uint64_t id = next_id++;
      q.push(Time::from_micros(when), [id, &fired] { fired.push_back(id); });
      oracle.push(when, id);
    } else {
      std::int64_t owhen = 0;
      std::vector<std::uint64_t> want = oracle.pop_tick(&owhen);
      if (want.empty()) {
        EXPECT_FALSE(q.pop_and_run());
      } else {
        for (const std::uint64_t id : want) {
          fired.clear();
          ASSERT_TRUE(q.pop_and_run());
          ASSERT_EQ(fired.size(), 1u);
          ASSERT_EQ(fired.front(), id);
        }
      }
    }
  }
}

TEST(WheelTick, SameInstantPushJoinsTheDrainingBatch) {
  // An event that schedules more work at its own instant sees that
  // work run in the same run_tick pass, after every previously
  // scheduled same-instant event (seq order).
  EventQueue q;
  std::vector<int> fired;
  const Time t = Time::from_micros(1000);
  q.push(t, [&q, &fired, t] {
    fired.push_back(1);
    q.push(t, [&fired] { fired.push_back(3); });
  });
  q.push(t, [&fired] { fired.push_back(2); });
  EXPECT_EQ(q.run_tick(), 3u);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(q.empty());
}

TEST(WheelTick, MixedResidenciesMergeInSeqOrder) {
  // One instant reached from every residence: a far push that cascades
  // into the tick (pushed first, so smallest seq), a beyond-horizon
  // heap event moved within the wheel's range only by its absolute
  // time, and direct near pushes. The drain must interleave them by
  // seq even though the wheel slot itself is unordered.
  EventQueue q;
  std::vector<int> fired;
  const std::int64_t t = (1ll << 24) + 12345;  // level-3 away from 0
  q.push(Time::from_micros(t), [&fired] { fired.push_back(0); });
  q.push(Time::from_micros(t), [&fired] { fired.push_back(1); });
  // Burn a nearer tick so the queue advances and cascades the pair.
  q.push(Time::from_micros(1 << 20), [&fired] { fired.push_back(-1); });
  EXPECT_EQ(q.run_tick(), 1u);
  // Now push more events at t from the nearer current tick (they land
  // in finer levels than the first two did).
  q.push(Time::from_micros(t), [&fired] { fired.push_back(2); });
  q.push(Time::from_micros(t), [&fired] { fired.push_back(3); });
  fired.clear();
  EXPECT_EQ(q.next_time().count_micros(), t);
  EXPECT_EQ(q.run_tick(), 4u);
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3}));
}

TEST(WheelSize, CountsEveryResidenceExactly) {
  // size() and next_time() across the wheel/heap split: wheel-resident
  // events (all levels), beyond-horizon heap residents, and batch
  // residents all count, and next_time() is exact before any cascade.
  EventQueue q;
  int ran = 0;
  const auto noop = [&ran] { ++ran; };

  EventHandle near = q.push(Time::from_micros(7), noop);        // level 0
  EventHandle mid = q.push(Time::from_micros(70'000), noop);    // level 2
  EventHandle far = q.push(Time::from_micros(1ll << 33), noop); // heap
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.next_time().count_micros(), 7);

  // Cancelling the minimum re-exposes the exact coarse-slot time.
  near.cancel();
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.next_time().count_micros(), 70'000);

  // A heap-resident cancel is also exact and immediate.
  far.cancel();
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.next_time().count_micros(), 70'000);
  EXPECT_TRUE(mid.pending());

  EXPECT_EQ(q.run_tick(), 1u);
  EXPECT_EQ(ran, 1);
  EXPECT_FALSE(mid.pending());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.next_time(), Time::max());
}

TEST(WheelCancel, CancelDuringDrainSkipsBatchedEntry) {
  // Cancelling a same-tick sibling from inside a running event must
  // suppress it even though it was already gathered into the batch.
  EventQueue q;
  std::vector<int> fired;
  const Time t = Time::from_micros(50);
  EventHandle doomed;
  q.push(t, [&doomed, &fired] {
    fired.push_back(1);
    doomed.cancel();
  });
  doomed = q.push(t, [&fired] { fired.push_back(2); });
  q.push(t, [&fired] { fired.push_back(3); });
  EXPECT_EQ(q.run_tick(), 2u);
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
  EXPECT_EQ(q.size(), 0u);
}

}  // namespace
