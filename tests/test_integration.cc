// End-to-end behavioral tests: each asserts a headline result of the
// paper on a (shortened) canned scenario.
#include <gtest/gtest.h>

#include "core/ctqo_analyzer.h"
#include "core/experiment.h"
#include "core/scenarios.h"

namespace ntier::core {
namespace {

using sim::Duration;
using sim::Time;
namespace sc = scenarios;

TEST(Integration, SyncConsolidationProducesUpstreamCtqo) {
  auto cfg = sc::fig3_consolidation_sync();
  auto sys = run_system(cfg);
  // Drops occur at the web tier (Apache), not at the bottlenecked app
  // tier's own ingress from a bounded upstream.
  EXPECT_GT(sys->web()->stats().dropped, 50u);
  EXPECT_EQ(sys->db()->stats().dropped, 0u);
  EXPECT_GT(sys->latency().vlrt_count(), 50u);
  const auto report = analyze_ctqo(*sys);
  ASSERT_GE(report.episodes.size(), 3u);
  EXPECT_GE(report.upstream_episodes, 3u);
  for (const auto& ep : report.episodes) {
    if (ep.kind == CtqoEpisode::Kind::kUpstream) {
      EXPECT_EQ(ep.bottleneck_tier, index(Tier::kApp));
    }
  }
}

TEST(Integration, SyncApachePreforkSecondLevelOverflow) {
  auto cfg = sc::fig3_consolidation_sync();
  auto sys = run_system(cfg);
  // The second Apache process raises MaxSysQDepth 278 -> 428 (Fig 3(b)).
  EXPECT_EQ(sys->web()->max_sys_q_depth(), 428u);
  const double peak = sys->sampler().series("apache.queue").max_value();
  EXPECT_GT(peak, 300.0);
  EXPECT_LE(peak, 428.0);
}

TEST(Integration, SyncLogFlushProducesUpstreamCtqo) {
  auto cfg = sc::fig5_logflush_sync();
  cfg.duration = Duration::seconds(45);  // one flush at 10 s is enough
  auto sys = run_system(cfg);
  EXPECT_GT(sys->web()->stats().dropped, 10u);
  EXPECT_GT(sys->latency().vlrt_count(), 10u);
  const auto report = analyze_ctqo(*sys);
  ASSERT_GE(report.episodes.size(), 1u);
  EXPECT_EQ(report.episodes[0].kind, CtqoEpisode::Kind::kUpstream);
  EXPECT_EQ(report.episodes[0].bottleneck_tier, index(Tier::kDb));
}

TEST(Integration, Nx1MovesDropsDownstreamToTomcat) {
  auto cfg = sc::fig7_nx1();
  cfg.duration = Duration::seconds(30);
  auto sys = run_system(cfg);
  EXPECT_EQ(sys->web()->stats().dropped, 0u);  // Nginx never drops
  EXPECT_GT(sys->app()->stats().dropped, 20u);
  const auto report = analyze_ctqo(*sys);
  ASSERT_GE(report.episodes.size(), 1u);
  EXPECT_GT(report.downstream_episodes, 0u);
  // Tomcat's queue is bounded by its MaxSysQDepth = 293.
  EXPECT_LE(sys->sampler().series("tomcat.queue").max_value(), 293.0);
}

TEST(Integration, Nx2MysqlMillibottleneckDropsAtMysql) {
  auto cfg = sc::fig8_nx2_mysql();
  cfg.duration = Duration::seconds(30);
  auto sys = run_system(cfg);
  EXPECT_EQ(sys->web()->stats().dropped, 0u);
  EXPECT_EQ(sys->app()->stats().dropped, 0u);
  EXPECT_GT(sys->db()->stats().dropped, 20u);
  EXPECT_LE(sys->sampler().series("mysql.queue").max_value(), 228.0);
  const auto report = analyze_ctqo(*sys);
  ASSERT_GE(report.episodes.size(), 1u);
  EXPECT_GT(report.downstream_episodes, 0u);
}

TEST(Integration, Nx2XtomcatBatchReleaseFloodsMysql) {
  auto cfg = sc::fig9_nx2_xtomcat();
  cfg.duration = Duration::seconds(30);
  auto sys = run_system(cfg);
  // Millibottleneck is in XTomcat, but the drops surface at MySQL.
  EXPECT_EQ(sys->app()->stats().dropped, 0u);
  EXPECT_GT(sys->db()->stats().dropped, 20u);
  const auto report = analyze_ctqo(*sys);
  ASSERT_GE(report.episodes.size(), 1u);
  for (const auto& ep : report.episodes) {
    EXPECT_EQ(ep.drop_tier, index(Tier::kDb));
    EXPECT_EQ(ep.kind, CtqoEpisode::Kind::kDownstream);
  }
}

TEST(Integration, Nx3EliminatesCtqoUnderCpuMillibottleneck) {
  auto cfg = sc::fig10_nx3_xtomcat();
  auto sys = run_system(cfg);
  EXPECT_EQ(sys->web()->stats().dropped, 0u);
  EXPECT_EQ(sys->app()->stats().dropped, 0u);
  EXPECT_EQ(sys->db()->stats().dropped, 0u);
  EXPECT_EQ(sys->latency().vlrt_count(), 0u);
  EXPECT_TRUE(analyze_ctqo(*sys).episodes.empty());
  // The millibottlenecks really happened:
  EXPECT_FALSE(sys->sampler().saturated_windows("xtomcat").empty());
}

TEST(Integration, Nx3EliminatesCtqoUnderIoMillibottleneck) {
  auto cfg = sc::fig11_nx3_logflush();
  cfg.duration = Duration::seconds(45);
  auto sys = run_system(cfg);
  EXPECT_EQ(sys->web()->stats().dropped + sys->app()->stats().dropped +
                sys->db()->stats().dropped,
            0u);
  EXPECT_EQ(sys->latency().vlrt_count(), 0u);
  // The flush really stalled the disk:
  EXPECT_GT(sys->sampler().series("dbdisk.busy").max_value(), 90.0);
}

TEST(Integration, NoMillibottleneckNoVlrt) {
  ExperimentConfig cfg;
  cfg.system.arch = Architecture::kSync;
  cfg.workload.sessions = 7000;
  cfg.duration = Duration::seconds(30);
  auto sys = run_system(cfg);
  EXPECT_EQ(sys->latency().vlrt_count(), 0u);
  EXPECT_EQ(sys->web()->stats().dropped, 0u);
}

TEST(Integration, VlrtLatenciesSitAtRtoMultiples) {
  auto cfg = sc::fig3_consolidation_sync();
  auto sys = run_system(cfg);
  const auto& hist = sys->latency().histogram();
  // Every VLRT is >= 3 s and the dominant mode is near 3 s.
  const auto modes = hist.modes(5);
  ASSERT_GE(modes.size(), 2u);
  EXPECT_LT(modes[0].to_seconds(), 1.0);
  // Some mode sits right at the RTO (3 s); queueing clusters may appear
  // below it, so search rather than index.
  bool has_rto_mode = false;
  for (auto m : modes)
    if (m.to_seconds() > 2.9 && m.to_seconds() < 3.5) has_rto_mode = true;
  EXPECT_TRUE(has_rto_mode);
  // Nothing lives between the end of the queueing continuum and the RTO.
  EXPECT_EQ(hist.count_at_least(Duration::from_seconds(2.5)),
            hist.count_at_least(Duration::from_seconds(2.95)));
}

TEST(Integration, DroppedRequestsMatchVlrt) {
  auto cfg = sc::fig3_consolidation_sync();
  auto sys = run_system(cfg);
  // Requests that experienced >= 1 drop are (essentially) the VLRT set.
  EXPECT_NEAR(static_cast<double>(sys->latency().dropped_request_count()),
              static_cast<double>(sys->latency().vlrt_count()),
              0.05 * sys->latency().vlrt_count() + 5);
}

TEST(Integration, ConservationAcrossSystem) {
  auto cfg = sc::fig3_consolidation_sync();
  auto sys = run_system(cfg);
  const auto& c = sys->clients();
  EXPECT_EQ(c.issued(), c.completed() + c.in_flight());
  EXPECT_LE(c.in_flight(), cfg.workload.sessions);
  // Web tier conservation: accepted = completed + still inside.
  EXPECT_EQ(sys->web()->stats().accepted,
            sys->web()->stats().completed + sys->web()->queued_requests());
}

TEST(Integration, ThroughputMatchesClosedLoopLaw) {
  ExperimentConfig cfg;
  cfg.workload.sessions = 7000;
  cfg.duration = Duration::seconds(40);
  cfg.workload.measure_from = Time::from_seconds(10);
  auto sys = run_system(cfg);
  const double rps =
      sys->latency().throughput_rps(Time::from_seconds(10), sys->simulation().now());
  EXPECT_NEAR(rps, 990.0, 60.0);  // paper: 990 req/s at WL 7000
}

TEST(Integration, ModerateUtilizationDespiteDrops) {
  // The paper's headline: CTQO at moderate average utilization.
  auto cfg = sc::fig3_consolidation_sync();
  auto sys = run_system(cfg);
  auto s = summarize(*sys);
  EXPECT_GT(s.total_drops, 0u);
  EXPECT_LT(s.highest_mean_util_pct, 90.0);
}

}  // namespace
}  // namespace ntier::core
