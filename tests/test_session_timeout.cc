// Tests for the Markov session model, client timeouts, trace store /
// per-hop breakdown, and the load-shedding admission alternative.
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/scenarios.h"
#include "core/trace_analysis.h"
#include "helpers.h"
#include "monitor/trace_store.h"
#include "server/sync_server.h"
#include "workload/client.h"
#include "workload/session_model.h"

namespace ntier {
namespace {

using sim::Duration;
using sim::Time;

// --- SessionModel ----------------------------------------------------------

TEST(SessionModel, StationaryMatchesRubbosWeights) {
  const auto model = workload::SessionModel::rubbos_browse();
  const auto pi = model.stationary();
  ASSERT_EQ(pi.size(), 3u);
  EXPECT_NEAR(pi[0], 0.15, 0.01);
  EXPECT_NEAR(pi[1], 0.55, 0.01);
  EXPECT_NEAR(pi[2], 0.30, 0.01);
}

TEST(SessionModel, EmpiricalWalkMatchesStationary) {
  const auto model = workload::SessionModel::rubbos_browse();
  sim::Rng rng(5);
  std::vector<int> counts(3, 0);
  std::size_t state = 1;
  const int n = 60000;
  for (int i = 0; i < n; ++i) {
    state = model.next(state, rng);
    ++counts[state];
  }
  const auto pi = model.stationary();
  for (int c = 0; c < 3; ++c)
    EXPECT_NEAR(counts[c] / double(n), pi[c], 0.01) << "class " << c;
}

TEST(SessionModel, DeterministicNextDistribution) {
  workload::SessionModel model({{1.0, 0.0}, {0.0, 1.0}});  // absorbing
  sim::Rng rng(1);
  EXPECT_EQ(model.next(0, rng), 0u);
  EXPECT_EQ(model.next(1, rng), 1u);
}

TEST(SessionModel, SystemLevelMixMatchesStationary) {
  core::ExperimentConfig cfg;
  cfg.workload.sessions = 2000;
  cfg.workload.markov_sessions = true;
  cfg.duration = Duration::seconds(40);
  auto sys = core::run_system(cfg);
  const auto& lat = sys->latency();
  const double total = static_cast<double>(lat.completed());
  ASSERT_GT(total, 5000);
  EXPECT_NEAR(lat.class_stats(0).completed / total, 0.15, 0.03);
  EXPECT_NEAR(lat.class_stats(1).completed / total, 0.55, 0.03);
  EXPECT_NEAR(lat.class_stats(2).completed / total, 0.30, 0.03);
}

// --- client timeout --------------------------------------------------------

TEST(ClientTimeout, TimesOutSlowRequestsAndMovesOn) {
  sim::Simulation sim;
  cpu::HostCpu host(sim, 1.0);
  auto* vm = host.add_vm("web");
  auto profile = test::one_class_profile();
  // Server so slow every request overruns the 100 ms timeout.
  server::SyncServer srv(
      sim, "web", vm, &profile,
      [](const server::RequestClassProfile&) {
        return test::cpu_only(Duration::millis(400));
      },
      server::SyncConfig{.threads_per_process = 1});
  workload::ClientConfig cc;
  cc.sessions = 1;
  cc.mean_think = Duration::millis(10);
  cc.timeout = Duration::millis(100);
  workload::ClientPool clients(sim, sim::Rng(3), &profile, &srv, cc);
  clients.start();
  sim.run_until(Time::from_seconds(3));
  EXPECT_GT(clients.timeouts(), 2u);
  EXPECT_EQ(clients.timeouts(), clients.failed());
  // The session kept going after each timeout (many re-issues despite
  // every request overrunning the timeout).
  EXPECT_GT(clients.issued(), 10u);
  EXPECT_EQ(clients.issued(), clients.completed() + clients.in_flight());
}

TEST(ClientTimeout, StaleResponseDiscarded) {
  // The server's late reply after a timeout must not double-complete.
  sim::Simulation sim;
  cpu::HostCpu host(sim, 1.0);
  auto* vm = host.add_vm("web");
  auto profile = test::one_class_profile();
  server::SyncServer srv(
      sim, "web", vm, &profile,
      [](const server::RequestClassProfile&) {
        return test::cpu_only(Duration::millis(200));
      },
      server::SyncConfig{.threads_per_process = 1});
  workload::ClientConfig cc;
  cc.sessions = 1;
  cc.mean_think = Duration::seconds(10);  // one request per window
  cc.timeout = Duration::millis(50);
  workload::ClientPool clients(sim, sim::Rng(4), &profile, &srv, cc);
  int notified = 0;
  clients.on_complete([&](const server::RequestPtr&) { ++notified; });
  clients.start();
  sim.run_until(Time::from_seconds(5));
  EXPECT_EQ(clients.completed(), static_cast<std::uint64_t>(notified));
  EXPECT_EQ(clients.issued(), clients.completed() + clients.in_flight());
}

TEST(ClientTimeout, NoTimeoutsWhenFast) {
  core::ExperimentConfig cfg;
  cfg.workload.sessions = 1000;
  cfg.workload.client_timeout = Duration::seconds(10);
  cfg.duration = Duration::seconds(10);
  auto sys = core::run_system(cfg);
  EXPECT_EQ(sys->clients().timeouts(), 0u);
}

// --- TraceStore + trace analysis -------------------------------------------

TEST(TraceStore, SeparatesAnomalousFromNormal) {
  monitor::TraceStore store(monitor::TraceStore::Config{.normal_capacity = 2});
  auto mk = [](double lat_s, int drops) {
    auto r = server::make_request();
    r->issued = Time::origin();
    r->completed = Time::from_seconds(lat_s);
    r->total_drops = drops;
    return r;
  };
  store.record(mk(0.01, 0));
  store.record(mk(0.01, 0));
  store.record(mk(0.01, 0));  // over capacity: dropped from the sample
  store.record(mk(3.5, 1));   // anomalous: always kept
  store.record(mk(0.02, 1));  // dropped packet: anomalous even if fast
  EXPECT_EQ(store.normal().size(), 2u);
  EXPECT_EQ(store.anomalous().size(), 2u);
  EXPECT_EQ(store.seen(), 5u);
}

TEST(TraceAnalysis, BreaksDownPerTier) {
  core::ExperimentConfig cfg = core::scenarios::fig3_consolidation_sync();
  cfg.workload.trace_requests = true;
  cfg.duration = Duration::seconds(12);
  core::NTierSystem sys(cfg);
  monitor::TraceStore store;
  sys.clients().on_complete(
      [&](const server::RequestPtr& r) { store.record(r); });
  sys.run();

  const auto normal = core::analyze_traces(store.normal());
  ASSERT_EQ(normal.hops.size(), 3u);
  EXPECT_EQ(normal.hops[0].tier, "apache");
  EXPECT_EQ(normal.hops[1].tier, "tomcat");
  EXPECT_EQ(normal.hops[2].tier, "mysql");
  // Nesting: an outer tier's span contains the inner ones (per-request;
  // apache's *mean* can sit below tomcat's because static requests pull
  // it down, so compare tomcat/mysql means and the maxima).
  EXPECT_GE(normal.hops[1].mean_in_tier, normal.hops[2].mean_in_tier);
  EXPECT_GE(normal.hops[0].max_in_tier, normal.hops[1].max_in_tier);
  EXPECT_LT(normal.mean_outside_tiers, Duration::millis(5));

  const auto vlrt = core::analyze_traces(store.anomalous());
  ASSERT_GT(vlrt.requests, 10u);
  // The VLRT population's latency lives OUTSIDE the tiers (RTO waits).
  EXPECT_GT(vlrt.mean_outside_tiers, Duration::seconds(2));
  EXPECT_FALSE(vlrt.to_table().empty());
}

TEST(TraceAnalysis, SkipsUntracedRequests) {
  auto r = server::make_request();
  r->issued = Time::origin();
  r->completed = Time::from_seconds(1);
  const auto out = core::analyze_traces({r});
  EXPECT_EQ(out.requests, 0u);
}

// --- load shedding ----------------------------------------------------------

TEST(LoadShedding, TradesVlrtForFastFailures) {
  auto base = core::scenarios::fig3_consolidation_sync();
  base.duration = Duration::seconds(15);

  auto drop_cfg = base;
  auto sys_drop = core::run_system(drop_cfg);

  auto shed_cfg = base;
  shed_cfg.system.web_shed_on_overload = true;
  auto sys_shed = core::run_system(shed_cfg);

  // Shedding: no TCP drops at the web tier, failures instead, VLRT gone.
  auto* web = dynamic_cast<server::SyncServer*>(sys_shed->web());
  ASSERT_NE(web, nullptr);
  EXPECT_GT(web->shed_count(), 50u);
  EXPECT_EQ(sys_shed->web()->stats().dropped, 0u);
  EXPECT_GT(sys_shed->clients().failed(), 50u);
  EXPECT_LT(sys_shed->latency().vlrt_count(), sys_drop->latency().vlrt_count() / 5);

  // The dropping system has VLRT but (near) zero explicit failures.
  EXPECT_GT(sys_drop->latency().vlrt_count(), 100u);
  EXPECT_EQ(sys_drop->clients().failed(), 0u);
}

}  // namespace
}  // namespace ntier
