#include "metrics/table.h"

#include <gtest/gtest.h>

namespace ntier::metrics {
namespace {

TEST(Table, HeaderAndRule) {
  Table t({"a", "bb"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("a  bb"), std::string::npos);
  EXPECT_NE(s.find("-  --"), std::string::npos);
}

TEST(Table, RowAlignment) {
  Table t({"name", "v"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("x       1"), std::string::npos);
  EXPECT_NE(s.find("longer  22"), std::string::npos);
}

TEST(Table, BuilderCells) {
  Table t({"a", "b"});
  t.cell("1").cell("2");
  t.cell("3").cell("4");
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, EndRowPadsShortRows) {
  Table t({"a", "b", "c"});
  t.cell("only");
  t.end_row();
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(std::uint64_t{42}), "42");
  EXPECT_EQ(Table::num(1.0, 0), "1");
}

}  // namespace
}  // namespace ntier::metrics
