#include <gtest/gtest.h>

#include <cstdio>

#include "core/report.h"
#include "core/scenarios.h"
#include "metrics/csv.h"

namespace ntier {
namespace {

using sim::Duration;
using sim::Time;

// --- metrics/csv ----------------------------------------------------------

TEST(Csv, MergedTimelines) {
  metrics::Timeline a("cpu", Duration::millis(50));
  metrics::Timeline b("queue", Duration::millis(50));
  a.set(Time::origin(), 1.5);
  a.set(Time::from_micros(50'000), 2.5);
  b.set(Time::origin(), 10.0);
  const auto csv = metrics::timelines_to_csv({&a, &b});
  EXPECT_NE(csv.find("t_s,cpu,queue"), std::string::npos);
  EXPECT_NE(csv.find("0.000,1.5000,10.0000"), std::string::npos);
  EXPECT_NE(csv.find("0.050,2.5000,0.0000"), std::string::npos);
}

TEST(Csv, EmptySeriesList) {
  EXPECT_EQ(metrics::timelines_to_csv({}), "t_s\n");
}

TEST(Csv, HistogramIncludesEmptyMiddleBins) {
  metrics::LinearHistogram h(Duration::millis(100), Duration::seconds(1));
  h.record(Duration::millis(50));
  h.record(Duration::millis(250));
  const auto csv = metrics::histogram_to_csv(h);
  EXPECT_NE(csv.find("0.0,100.0,1"), std::string::npos);
  EXPECT_NE(csv.find("100.0,200.0,0"), std::string::npos);  // empty bin kept
  EXPECT_NE(csv.find("200.0,300.0,1"), std::string::npos);
  EXPECT_EQ(csv.find("300.0,400.0"), std::string::npos);  // trailing zeros cut
}

TEST(Csv, WriteFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/ntier_csv_test.csv";
  ASSERT_TRUE(metrics::write_file(path, "a,b\n1,2\n"));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[64] = {};
  const auto n = std::fread(buf, 1, sizeof buf - 1, f);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(std::string(buf, n), "a,b\n1,2\n");
}

TEST(Csv, WriteFileFailsOnBadPath) {
  EXPECT_FALSE(metrics::write_file("/nonexistent-dir-xyz/file.csv", "x"));
}

// --- core/report ----------------------------------------------------------

TEST(Report, TimelinePanelDownsamplesWithPeaks) {
  sim::Simulation sim;
  monitor::Sampler sampler(sim, Duration::millis(50));
  cpu::HostCpu host(sim, 1.0);
  auto* vm = host.add_vm("a");
  sampler.track_vm("a", vm);
  sampler.start();
  // Busy only in the second 50 ms window.
  sim.after(Duration::millis(50), [&] { vm->submit(Duration::millis(50), [] {}); });
  sim.run_until(Time::from_seconds(1));
  const auto panel = core::timeline_panel(sampler, {"a.cpu"}, Time::from_seconds(1),
                                          Duration::millis(500));
  // Two rows; the first must show the 100% peak despite downsampling.
  EXPECT_NE(panel.find("0.00"), std::string::npos);
  EXPECT_NE(panel.find("100.0"), std::string::npos);
  EXPECT_NE(panel.find("0.50"), std::string::npos);
}

TEST(Report, HistogramPanelListsModes) {
  monitor::LatencyCollector collector;
  for (int i = 0; i < 100; ++i) {
    auto r = server::make_request();
    r->issued = Time::origin();
    r->completed = Time::from_seconds(0.005);
    collector.record(r);
  }
  for (int i = 0; i < 10; ++i) {
    auto r = server::make_request();
    r->issued = Time::origin();
    r->completed = Time::from_seconds(3.02);
    r->total_drops = 1;
    collector.record(r);
  }
  const auto panel = core::histogram_panel(collector);
  EXPECT_NE(panel.find("modes:"), std::string::npos);
  EXPECT_NE(panel.find("3.05s"), std::string::npos);
}

TEST(Report, VlrtPanelShowsWindows) {
  monitor::LatencyCollector collector;
  auto r = server::make_request();
  r->issued = Time::origin();
  r->completed = Time::from_seconds(6.125);
  collector.record(r);
  const auto panel = core::vlrt_panel(collector);
  EXPECT_NE(panel.find("3s"), std::string::npos);   // threshold echoed
  EXPECT_NE(panel.find("6.10 1.000"), std::string::npos);
}

}  // namespace
}  // namespace ntier
