#include "metrics/histogram.h"

#include <gtest/gtest.h>

namespace ntier::metrics {
namespace {

using sim::Duration;

LinearHistogram make() {
  return LinearHistogram(Duration::millis(100), Duration::seconds(30));
}

TEST(Histogram, EmptyState) {
  auto h = make();
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.percentile(50), Duration::zero());
  EXPECT_EQ(h.mean(), Duration::zero());
  EXPECT_TRUE(h.modes(1).empty());
}

TEST(Histogram, BinPlacement) {
  auto h = make();
  h.record(Duration::millis(50));    // bin 0
  h.record(Duration::millis(100));   // bin 1 (lower edge inclusive)
  h.record(Duration::millis(199));   // bin 1
  h.record(Duration::millis(250));   // bin 2
  EXPECT_EQ(h.count_in_bin(0), 1u);
  EXPECT_EQ(h.count_in_bin(1), 2u);
  EXPECT_EQ(h.count_in_bin(2), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, OverflowSaturates) {
  auto h = make();
  h.record(Duration::seconds(1000));
  EXPECT_EQ(h.count_in_bin(h.bin_count() - 1), 1u);
}

TEST(Histogram, NegativeClampsToZeroBin) {
  auto h = make();
  h.record(Duration::millis(-5));
  EXPECT_EQ(h.count_in_bin(0), 1u);
}

TEST(Histogram, RecordN) {
  auto h = make();
  h.record_n(Duration::millis(10), 7);
  EXPECT_EQ(h.total(), 7u);
  EXPECT_EQ(h.count_in_bin(0), 7u);
  h.record_n(Duration::millis(10), 0);
  EXPECT_EQ(h.total(), 7u);
}

TEST(Histogram, PercentilesExact) {
  auto h = make();
  for (int i = 1; i <= 100; ++i) h.record(Duration::millis(i));
  EXPECT_EQ(h.percentile(0).to_millis(), 1.0);
  EXPECT_EQ(h.percentile(100).to_millis(), 100.0);
  EXPECT_NEAR(h.percentile(50).to_millis(), 50.0, 1.0);
  EXPECT_NEAR(h.percentile(99).to_millis(), 99.0, 1.0);
  EXPECT_EQ(h.min().to_millis(), 1.0);
  EXPECT_EQ(h.max().to_millis(), 100.0);
}

TEST(Histogram, PercentileAfterInterleavedInserts) {
  auto h = make();
  h.record(Duration::millis(300));
  EXPECT_EQ(h.percentile(100).to_millis(), 300.0);
  h.record(Duration::millis(100));  // re-sorts lazily
  EXPECT_EQ(h.percentile(0).to_millis(), 100.0);
}

TEST(Histogram, Mean) {
  auto h = make();
  h.record(Duration::millis(100));
  h.record(Duration::millis(300));
  EXPECT_EQ(h.mean().to_millis(), 200.0);
}

TEST(Histogram, CountAtLeast) {
  auto h = make();
  for (int i = 0; i < 10; ++i) h.record(Duration::millis(5));
  h.record(Duration::seconds(3));
  h.record(Duration::seconds(6));
  EXPECT_EQ(h.count_at_least(Duration::seconds(3)), 2u);
  EXPECT_EQ(h.count_at_least(Duration::seconds(7)), 0u);
}

TEST(Histogram, MultiModalDetection) {
  // The Fig 1 pattern: mass near 0, clusters at 3, 6, 9 s.
  auto h = make();
  h.record_n(Duration::millis(5), 10000);
  h.record_n(Duration::millis(3050), 300);
  h.record_n(Duration::millis(6050), 60);
  h.record_n(Duration::millis(9050), 12);
  const auto modes = h.modes(5);
  ASSERT_EQ(modes.size(), 4u);
  EXPECT_NEAR(modes[0].to_seconds(), 0.05, 0.11);
  EXPECT_NEAR(modes[1].to_seconds(), 3.05, 0.2);
  EXPECT_NEAR(modes[2].to_seconds(), 6.05, 0.2);
  EXPECT_NEAR(modes[3].to_seconds(), 9.05, 0.2);
}

TEST(Histogram, ModesRespectThreshold) {
  auto h = make();
  h.record_n(Duration::millis(5), 100);
  h.record_n(Duration::millis(3050), 2);  // below threshold
  EXPECT_EQ(h.modes(5).size(), 1u);
}

TEST(Histogram, TableListsNonEmptyBins) {
  auto h = make();
  h.record_n(Duration::millis(50), 3);
  h.record_n(Duration::millis(3050), 1);
  const std::string t = h.to_table();
  EXPECT_NE(t.find("0.0 100.0 3"), std::string::npos);
  EXPECT_NE(t.find("3000.0 3100.0 1"), std::string::npos);
}

TEST(Histogram, BinEdges) {
  auto h = make();
  EXPECT_EQ(h.bin_lower(0), Duration::zero());
  EXPECT_EQ(h.bin_lower(3), Duration::millis(300));
  EXPECT_EQ(h.bin_width(), Duration::millis(100));
}

}  // namespace
}  // namespace ntier::metrics
