// Correlation engine (core/correlate.h): synthetic lag recovery,
// propagation classification, determinism, and the fig 5 integration
// check — the engine must rediscover "DB disk saturation causes client
// VLRT one RTO (~3 s) later" from the registry timelines alone.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/correlate.h"
#include "core/experiment.h"
#include "core/scenarios.h"
#include "metrics/timeline.h"
#include "telemetry/registry.h"

using namespace ntier;
using sim::Duration;
using sim::Time;

namespace {

constexpr int kWindows = 400;  // 20 s of 50 ms windows

Time w(int i) { return Time::origin() + Duration::millis(50) * i; }

// Marks [start, start+len) with `value` in a registry series.
void pulse(metrics::Timeline& t, int start, int len, double value) {
  for (int i = 0; i < len; ++i) t.set(w(start + i), value);
}

// Two-tier synthetic run: a saturation series on `sat_tier`, a drop
// series on `drop_tier`, VLRT trailing the drops by `rto_lag` windows,
// drops trailing saturation by `fill_lag`. Everything else zero.
struct Synthetic {
  telemetry::Registry reg{Duration::millis(50)};
  metrics::Timeline vlrt{"vlrt", Duration::millis(50)};
  core::SignalSet set;

  Synthetic(int sat_tier, int drop_tier, int fill_lag, int rto_lag) {
    const std::vector<std::string> names = {"front", "leaf"};
    auto& sat = reg.series(names[sat_tier] + "disk.busy");
    auto& drops = reg.series(names[drop_tier] + ".dropped");
    for (int start : {100, 250}) {
      pulse(sat, start, 10, 100.0);  // pegged windows (>= 99 %)
      pulse(drops, start + fill_lag, 10, 40.0);
      pulse(vlrt, start + fill_lag + rto_lag, 10, 30.0);
    }
    // Extend every series to the full horizon (trailing zeros).
    sat.set(w(kWindows - 1), 5.0);
    drops.set(w(kWindows - 1), 0.0);
    vlrt.set(w(kWindows - 1), 0.0);

    set.registry = &reg;
    set.vlrt = &vlrt;
    set.window = Duration::millis(50);
    for (int i = 0; i < 2; ++i) {
      core::TierSignals ts;
      ts.name = names[i];
      if (i == sat_tier) ts.saturation.push_back(names[i] + "disk.busy");
      ts.dropped = names[i] + ".dropped";
      ts.queue = names[i] + ".queue";
      set.tiers.push_back(std::move(ts));
    }
  }
};

}  // namespace

TEST(Correlate, RecoversInjectedLagsUpstream) {
  // Bottleneck behind (tier 1), drops in front (tier 0): upstream CTQO.
  Synthetic s(/*sat_tier=*/1, /*drop_tier=*/0, /*fill_lag=*/3, /*rto_lag=*/60);
  const auto rep = core::correlate_signals(s.set);

  EXPECT_EQ(rep.propagation, core::Propagation::kUpstream);
  EXPECT_EQ(rep.drop_tier, 0);
  EXPECT_EQ(rep.drop_tier_name, "front");
  EXPECT_EQ(rep.bottleneck_tier, 1);
  EXPECT_EQ(rep.bottleneck_series, "leafdisk.busy");

  ASSERT_FALSE(rep.chains.empty());
  const auto& top = rep.chains.front();
  EXPECT_EQ(top.fill.lag_windows, 3);
  EXPECT_NEAR(top.fill.lag_seconds, 0.15, 1e-9);
  EXPECT_EQ(top.rto.lag_windows, 60);
  EXPECT_NEAR(top.rto.lag_seconds, 3.0, 1e-9);
  EXPECT_GT(top.score, 0.95);  // pulses align exactly at the right lags
}

TEST(Correlate, ClassifiesDownstreamWhenDropsAreBehindTheBottleneck) {
  // Bottleneck in front (tier 0), drops behind (tier 1): an async front
  // flooded its backend — downstream CTQO.
  Synthetic s(/*sat_tier=*/0, /*drop_tier=*/1, /*fill_lag=*/5, /*rto_lag=*/61);
  const auto rep = core::correlate_signals(s.set);
  EXPECT_EQ(rep.propagation, core::Propagation::kDownstream);
  EXPECT_EQ(rep.drop_tier, 1);
  EXPECT_EQ(rep.bottleneck_tier, 0);
  ASSERT_FALSE(rep.chains.empty());
  EXPECT_EQ(rep.chains.front().rto.lag_windows, 61);
}

TEST(Correlate, AbsentWhenNothingDropped) {
  Synthetic s(1, 0, 3, 60);
  // Rebuild the signal set with the drop series zeroed out.
  auto& drops = s.reg.series("front.dropped");
  for (int i = 0; i < kWindows; ++i) drops.set(w(i), 0.0);
  const auto rep = core::correlate_signals(s.set);
  EXPECT_EQ(rep.propagation, core::Propagation::kAbsent);
  EXPECT_EQ(rep.drop_tier, -1);
  EXPECT_TRUE(rep.chains.empty());
}

TEST(Correlate, ReportIsDeterministic) {
  Synthetic a(1, 0, 3, 60);
  Synthetic b(1, 0, 3, 60);
  const auto ra = core::correlate_signals(a.set);
  const auto rb = core::correlate_signals(b.set);
  EXPECT_EQ(ra.to_string(), rb.to_string());
  // And repeated analysis of the same signals is byte-identical.
  EXPECT_EQ(core::correlate_signals(a.set).to_string(), ra.to_string());
}

TEST(Correlate, Fig5FindsDbDiskSaturationAtOneRto) {
  // The acceptance check: from the fig 5 log-flush run's telemetry
  // alone, the engine must rank "DB disk saturation -> front-tier drops
  // -> VLRT at ~3 s" first and call the propagation upstream.
  auto sys = core::run_system(core::scenarios::fig5_logflush_sync());
  const auto set = core::collect_signals(*sys);
  for (const auto& tier : set.tiers) {
    for (const auto& name : tier.saturation)
      EXPECT_TRUE(set.registry->has_series(name)) << name;
    EXPECT_TRUE(set.registry->has_series(tier.dropped)) << tier.dropped;
  }

  const auto rep = core::correlate(*sys);
  EXPECT_EQ(rep.propagation, core::Propagation::kUpstream);
  EXPECT_EQ(rep.drop_tier_name, "apache");
  EXPECT_EQ(rep.bottleneck_series, "dbdisk.busy");
  ASSERT_FALSE(rep.chains.empty());
  const auto& top = rep.chains.front();
  EXPECT_EQ(top.saturation_series, "dbdisk.busy");
  // The headline number: drops surface as VLRT one RTO later (3 s
  // +/- 200 ms acceptance band).
  EXPECT_NEAR(top.rto.lag_seconds, 3.0, 0.2);
  EXPECT_GT(top.rto.r, 0.9);
  EXPECT_GT(top.score, 0.5);
}
