// Tests of the resilience layer: tail-tolerance policies (deadlines,
// retries, hedging, circuit breaking) and deterministic fault injection.
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/scenarios.h"
#include "helpers.h"
#include "policy/tail_policy.h"
#include "server/sync_server.h"
#include "sim/random.h"
#include "sim/simulation.h"

namespace ntier {
namespace {

using sim::Duration;
using sim::Simulation;
using sim::Time;

// --- policy value types ----------------------------------------------------

TEST(RetryPolicy, ExponentialBackoffIsCappedAtMax) {
  policy::RetryPolicy p;
  p.max_attempts = 6;
  p.base_backoff = Duration::millis(100);
  p.max_backoff = Duration::millis(500);
  p.decorrelated_jitter = false;
  sim::Rng rng(1);
  EXPECT_EQ(p.backoff(1, Duration::zero(), rng), Duration::millis(100));
  EXPECT_EQ(p.backoff(2, Duration::millis(100), rng), Duration::millis(200));
  EXPECT_EQ(p.backoff(4, Duration::millis(400), rng), Duration::millis(500));  // capped
}

TEST(RetryPolicy, DecorrelatedJitterStaysInsideEnvelope) {
  policy::RetryPolicy p;
  p.max_attempts = 6;
  p.base_backoff = Duration::millis(50);
  p.max_backoff = Duration::seconds(2);
  p.decorrelated_jitter = true;
  sim::Rng rng(7);
  Duration prev = p.base_backoff;
  for (int attempt = 1; attempt <= 20; ++attempt) {
    const Duration b = p.backoff(attempt, prev, rng);
    EXPECT_GE(b, p.base_backoff);
    EXPECT_LE(b, std::max(p.max_backoff, prev * 3));
    EXPECT_LE(b, p.max_backoff);
    prev = b;
  }
}

TEST(RetryBudget, TokensGateRetries) {
  policy::RetryBudget budget(/*ratio=*/0.5, /*capacity=*/2.0);
  // Fresh bucket is full: two retries are affordable, the third is not.
  EXPECT_TRUE(budget.try_spend());
  EXPECT_TRUE(budget.try_spend());
  EXPECT_FALSE(budget.try_spend());
  // Two new requests earn one token back.
  budget.on_request();
  budget.on_request();
  EXPECT_TRUE(budget.try_spend());
  EXPECT_FALSE(budget.try_spend());
}

TEST(LatencyEstimator, TracksWindowQuantiles) {
  policy::LatencyEstimator est(100);
  EXPECT_EQ(est.quantile(0.95), Duration::zero());
  for (int i = 1; i <= 100; ++i) est.record(Duration::millis(i));
  EXPECT_EQ(est.count(), 100u);
  EXPECT_GE(est.quantile(0.95), Duration::millis(94));
  EXPECT_LE(est.quantile(0.95), Duration::millis(97));
  EXPECT_EQ(est.quantile(1.0), Duration::millis(100));
}

// --- circuit breaker state machine -----------------------------------------

policy::BreakerPolicy tight_breaker() {
  policy::BreakerPolicy p;
  p.enabled = true;
  p.failure_threshold = 0.5;
  p.min_samples = 4;
  p.window = Duration::seconds(1);
  p.open_for = Duration::seconds(2);
  p.half_open_probes = 1;
  return p;
}

TEST(CircuitBreaker, OpensAtFailureThresholdAndFastFails) {
  Simulation sim;
  policy::CircuitBreaker br(sim, tight_breaker());
  EXPECT_EQ(br.state(), policy::CircuitBreaker::State::kClosed);
  br.record_success();
  br.record_success();
  br.record_failure();
  EXPECT_EQ(br.state(), policy::CircuitBreaker::State::kClosed);  // 1/3 < 0.5
  br.record_failure();  // 2/4 >= 0.5 with min_samples met -> open
  EXPECT_EQ(br.state(), policy::CircuitBreaker::State::kOpen);
  EXPECT_EQ(br.opens(), 1u);
  EXPECT_FALSE(br.allow());
  EXPECT_EQ(br.rejects(), 1u);
}

TEST(CircuitBreaker, HalfOpenProbeClosesOnSuccess) {
  Simulation sim;
  policy::CircuitBreaker br(sim, tight_breaker());
  for (int i = 0; i < 4; ++i) br.record_failure();
  ASSERT_EQ(br.state(), policy::CircuitBreaker::State::kOpen);
  sim.after(Duration::seconds(2), [] {});
  sim.run_all();
  EXPECT_TRUE(br.allow());  // the single half-open probe slot
  EXPECT_EQ(br.state(), policy::CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(br.allow());  // second concurrent send still rejected
  br.record_success();
  EXPECT_EQ(br.state(), policy::CircuitBreaker::State::kClosed);
  EXPECT_TRUE(br.allow());
}

TEST(CircuitBreaker, HalfOpenProbeReopensOnFailure) {
  Simulation sim;
  policy::CircuitBreaker br(sim, tight_breaker());
  for (int i = 0; i < 4; ++i) br.record_failure();
  sim.after(Duration::seconds(2), [] {});
  sim.run_all();
  EXPECT_TRUE(br.allow());
  br.record_failure();
  EXPECT_EQ(br.state(), policy::CircuitBreaker::State::kOpen);
  EXPECT_EQ(br.opens(), 2u);
  EXPECT_FALSE(br.allow());
}

// --- deadline admission at a tier ------------------------------------------

struct ServerFixture {
  Simulation sim;
  cpu::HostCpu host{sim, 1.0};
  cpu::VmCpu* vm = host.add_vm("srv");
  server::AppProfile profile = test::one_class_profile();
  test::ReplySink sink{sim};

  std::unique_ptr<server::SyncServer> make() {
    server::SyncConfig cfg;
    cfg.threads_per_process = 2;
    auto prog = test::cpu_only(Duration::millis(10));
    return std::make_unique<server::SyncServer>(
        sim, "srv", vm, &profile,
        [prog](const server::RequestClassProfile&) { return prog; }, cfg);
  }
};

TEST(DeadlineAdmission, ExpiredRequestIsRefusedWithoutQueueing) {
  ServerFixture f;
  auto srv = f.make();
  auto job = f.sink.job(1);
  job.req->deadline = Time::from_seconds(0.0);  // already due
  f.sim.after(Duration::millis(5), [&] {
    // Accepted at the TCP level (no retransmit storm for cancelled work)
    // but never queued: it comes back immediately as a failure.
    EXPECT_TRUE(srv->offer(std::move(job)));
  });
  f.sim.run_all();
  ASSERT_EQ(f.sink.replies.size(), 1u);
  EXPECT_TRUE(f.sink.replies[0].second < Time::from_seconds(0.006));
  EXPECT_EQ(srv->stats().expired, 1u);
  EXPECT_EQ(srv->stats().accepted, 0u);
  EXPECT_EQ(srv->stats().completed, 0u);
}

TEST(DeadlineAdmission, FutureDeadlineProceedsNormally) {
  ServerFixture f;
  auto srv = f.make();
  auto job = f.sink.job(2);
  job.req->deadline = Time::from_seconds(1.0);
  EXPECT_TRUE(srv->offer(std::move(job)));
  f.sim.run_all();
  ASSERT_EQ(f.sink.replies.size(), 1u);
  EXPECT_EQ(srv->stats().expired, 0u);
  EXPECT_EQ(srv->stats().completed, 1u);
  EXPECT_FALSE(f.sink.replies.empty());
}

// --- crash windows at a tier -----------------------------------------------

TEST(CrashWindow, DownServerRefusesAndAbortsQueuedWork) {
  ServerFixture f;
  auto srv = f.make();
  // Two jobs on workers, one queued in the backlog.
  EXPECT_TRUE(srv->offer(f.sink.job(1)));
  EXPECT_TRUE(srv->offer(f.sink.job(2)));
  EXPECT_TRUE(srv->offer(f.sink.job(3)));
  srv->set_down(true, /*abort_queued_work=*/true);
  EXPECT_EQ(srv->stats().aborted, 1u);  // the backlog entry
  EXPECT_FALSE(srv->offer(f.sink.job(4)));  // refused at the door
  EXPECT_EQ(srv->stats().refused_down, 1u);
  srv->set_down(false);
  EXPECT_TRUE(srv->offer(f.sink.job(5)));
  f.sim.run_all();
  // 1,2 ran; 3 aborted (failed reply); 4 refused (no reply); 5 ran.
  EXPECT_EQ(f.sink.replies.size(), 4u);
  // Aborts count into completed so accepted == completed + in-system holds.
  EXPECT_EQ(srv->stats().completed, 4u);
  EXPECT_EQ(srv->stats().accepted, 4u);
}

// --- system-level: the breaker under a slow-node window --------------------

// A long slow-node window on the DB drives the app tier's breaker
// through the full state cycle: closed -> open (attempt timeouts),
// open -> half-open -> open again (the probe launched mid-window still
// fails), and finally half-open -> closed once the window clears. A
// reopen can only happen via a failed half-open probe, so opens >= 2
// proves the half-open -> open edge; ending closed proves the
// half-open -> closed edge.
TEST(CircuitBreaker, SlowNodeWindowDrivesHalfOpenTransitions) {
  core::ExperimentConfig cfg;
  cfg.name = "breaker-slow-db";
  cfg.workload.sessions = 2000;
  cfg.duration = Duration::seconds(22);
  policy::TailPolicy p;
  p.attempt_timeout = Duration::millis(400);
  p.retry.max_attempts = 2;
  p.retry.base_backoff = Duration::millis(50);
  p.retry.max_backoff = Duration::millis(50);
  p.retry.decorrelated_jitter = false;
  p.breaker.enabled = true;
  p.breaker.failure_threshold = 0.5;
  p.breaker.min_samples = 10;
  p.breaker.window = Duration::seconds(1);
  p.breaker.open_for = Duration::seconds(2);
  cfg.tier_policy = p;
  fault::SlowNodeWindow s;
  s.tier = 2;  // the DB host crawls at 2% speed
  s.at = Time::from_seconds(8.0);
  s.duration = Duration::seconds(6);
  s.speed_factor = 0.02;
  cfg.faults.slow_nodes.push_back(s);

  auto sys = core::run_system(cfg);
  const auto* g = sys->app()->governor();
  ASSERT_NE(g, nullptr);
  const auto* br = g->breaker();
  ASSERT_NE(br, nullptr);
  EXPECT_GE(br->opens(), 2u);  // reopened from half-open at least once
  EXPECT_EQ(br->state(), policy::CircuitBreaker::State::kClosed);  // recovered
  EXPECT_GT(g->stats().breaker_rejects, 0u);  // fast-fails while open
}

// --- system-level: fault plan replay ---------------------------------------

TEST(FaultInjection, ScheduleFiresAndDisturbsTheRun) {
  auto cfg = core::scenarios::ext_fault_injection(core::Architecture::kSync);
  auto sys = core::run_system(cfg);
  const auto& fc = sys->faults()->counters();
  EXPECT_EQ(fc.crashes, 1u);
  EXPECT_EQ(fc.restarts, 1u);
  EXPECT_EQ(fc.link_windows, 1u);
  EXPECT_EQ(fc.slow_windows, 1u);
  auto s = core::summarize(*sys);
  // The DB crash refuses packets at the door -> drops + VLRT tail.
  EXPECT_GT(s.total_drops, 0u);
  EXPECT_GT(s.latency.vlrt_count, 0u);
  EXPECT_GT(sys->db()->stats().refused_down, 0u);
}

TEST(FaultInjection, SameSeedReplaysBitIdentically) {
  auto cfg = core::scenarios::ext_fault_injection(core::Architecture::kSync);
  cfg.duration = Duration::seconds(20);  // covers the crash window
  auto a = core::run_system(cfg);
  auto b = core::run_system(cfg);
  EXPECT_EQ(core::summarize(*a).to_string(), core::summarize(*b).to_string());
}

// --- system-level: the policy layer under a millibottleneck ----------------

TEST(TailPolicy, RetryBudgetCapsAmplification) {
  auto naive_cfg = core::scenarios::ext_tail_tolerance(
      core::Architecture::kSync, core::scenarios::TailPolicyChoice::kNaiveRetry);
  auto budget_cfg = core::scenarios::ext_tail_tolerance(
      core::Architecture::kSync, core::scenarios::TailPolicyChoice::kBudgetedRetry);
  naive_cfg.duration = budget_cfg.duration = Duration::seconds(18);
  auto naive_sys = core::run_system(naive_cfg);
  auto budget_sys = core::run_system(budget_cfg);
  auto naive = core::summarize(*naive_sys);
  auto budget = core::summarize(*budget_sys);
  // Unbudgeted retries amplify the overflow; the budget caps retry load.
  EXPECT_GT(naive.client_retries, 4 * budget.client_retries);
  EXPECT_GT(naive.total_drops, 2 * budget.total_drops);
  EXPECT_GT(budget_sys->clients().governor()->stats().retries_suppressed, 0u);
}

TEST(TailPolicy, NaiveRetriesStormNearSaturation) {
  auto cfg = core::scenarios::ext_tail_tolerance(
      core::Architecture::kSync, core::scenarios::TailPolicyChoice::kNaiveRetry);
  auto base_cfg = core::scenarios::ext_tail_tolerance(
      core::Architecture::kSync, core::scenarios::TailPolicyChoice::kNone);
  auto sys = core::run_system(cfg);
  auto base_sys = core::run_system(base_cfg);
  auto s = core::summarize(*sys);
  auto base = core::summarize(*base_sys);
  EXPECT_GT(s.latency.vlrt_count, base.latency.vlrt_count);  // retries made it WORSE
  EXPECT_GT(s.total_drops, 5 * base.total_drops);
  EXPECT_GT(s.ctqo.retry_storm_episodes, 0u);  // and the analyzer says why
}

TEST(TailPolicy, DeadlinePropagationBoundsTheTail) {
  auto cfg = core::scenarios::ext_tail_tolerance(
      core::Architecture::kSync, core::scenarios::TailPolicyChoice::kDeadline);
  cfg.duration = Duration::seconds(18);
  cfg.tier_policy = cfg.workload.client_policy;  // tiers enforce it too
  auto sys = core::run_system(cfg);
  auto s = core::summarize(*sys);
  EXPECT_GT(s.deadline_cancels, 0u);
  // Nothing outlives the 2.5 s budget (3 s would mean an RTO slipped by).
  EXPECT_LE(s.latency.max.to_millis(), 2600.0);
  EXPECT_EQ(s.latency.vlrt_count, 0u);
}

TEST(TailPolicy, HedgingRescuesLossyLinkTailWithoutDrops) {
  auto none = core::summarize(*core::run_system(core::scenarios::ext_lossy_link(
      core::Architecture::kNx3, core::scenarios::TailPolicyChoice::kNone)));
  auto dh = core::summarize(*core::run_system(core::scenarios::ext_lossy_link(
      core::Architecture::kNx3, core::scenarios::TailPolicyChoice::kDeadlineHedge)));
  EXPECT_GT(none.latency.vlrt_count, 0u);    // baseline tail sits at the RTO
  EXPECT_EQ(none.total_drops, 0u);           // ...with zero server-side drops
  EXPECT_EQ(dh.total_drops, 0u);             // hedging adds none either
  EXPECT_LT(dh.latency.p999, none.latency.p999);
  EXPECT_EQ(dh.latency.vlrt_count, 0u);
  EXPECT_GT(dh.client_hedges, 0u);
}

TEST(TailPolicy, PolicyRunsReplayBitIdentically) {
  auto cfg = core::scenarios::ext_tail_tolerance(
      core::Architecture::kSync, core::scenarios::TailPolicyChoice::kFull);
  cfg.duration = Duration::seconds(15);
  auto a = core::run_system(cfg);
  auto b = core::run_system(cfg);
  EXPECT_EQ(core::summarize(*a).to_string(), core::summarize(*b).to_string());
}

// --- validate() rejects nonsense with context ------------------------------

TEST(Validate, RejectsBadConfigsDescriptively) {
  auto good = core::scenarios::fig3_consolidation_sync();
  EXPECT_NO_THROW(core::validate(good));

  auto bad = good;
  bad.system.backlog = 0;
  EXPECT_THROW(core::validate(bad), std::invalid_argument);

  bad = good;
  bad.workload.client_policy.retry.max_attempts = 0;
  EXPECT_THROW(core::validate(bad), std::invalid_argument);

  bad = good;
  bad.workload.client_policy.hedge.enabled = true;
  bad.workload.client_policy.hedge.percentile = 1.5;
  EXPECT_THROW(core::validate(bad), std::invalid_argument);

  bad = good;
  fault::LinkDegradeWindow w;
  w.hop = 0;
  w.at = Time::from_seconds(1.0);
  w.loss_prob = 1.5;  // not a probability
  bad.faults.links.push_back(w);
  EXPECT_THROW(core::validate(bad), std::invalid_argument);

  bad = good;
  fault::CrashWindow c;
  c.tier = 7;  // beyond the 3-tier system
  c.at = Time::from_seconds(1.0);
  bad.faults.crashes.push_back(c);
  EXPECT_THROW(core::validate(bad), std::invalid_argument);

  try {
    core::validate(bad);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("crash tier"), std::string::npos);
  }
}

TEST(Validate, RejectsZeroLengthFaultWindows) {
  const auto good = core::scenarios::fig3_consolidation_sync();

  auto bad = good;
  fault::CrashWindow c;
  c.tier = 1;
  c.at = Time::from_seconds(5.0);
  c.down_for = Duration::zero();
  bad.faults.crashes.push_back(c);
  EXPECT_THROW(core::validate(bad), std::invalid_argument);

  bad = good;
  fault::SlowNodeWindow s;
  s.tier = 1;
  s.at = Time::from_seconds(5.0);
  s.duration = Duration::zero();
  s.speed_factor = 0.5;
  bad.faults.slow_nodes.push_back(s);
  EXPECT_THROW(core::validate(bad), std::invalid_argument);

  bad = good;
  fault::LinkDegradeWindow l;
  l.hop = 1;
  l.at = Time::from_seconds(5.0);
  l.duration = Duration::zero();
  l.loss_prob = 0.5;
  bad.faults.links.push_back(l);
  EXPECT_THROW(core::validate(bad), std::invalid_argument);
}

TEST(Validate, RejectsOverlappingFaultWindowsOnTheSameTarget) {
  const auto good = core::scenarios::fig3_consolidation_sync();

  fault::CrashWindow a;
  a.tier = 2;
  a.at = Time::from_seconds(5.0);
  a.down_for = Duration::seconds(2);  // occupies [5, 7)
  fault::CrashWindow b = a;
  b.at = Time::from_seconds(6.0);  // starts inside a's window

  auto bad = good;
  bad.faults.crashes = {a, b};
  try {
    core::validate(bad);
    FAIL() << "expected invalid_argument for overlapping crash windows";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("overlapping crash"), std::string::npos);
  }

  // The scan sorts, so declaration order must not matter.
  bad.faults.crashes = {b, a};
  EXPECT_THROW(core::validate(bad), std::invalid_argument);

  // Back-to-back windows ([5,7) then [7,...)) are legal.
  auto ok = good;
  b.at = Time::from_seconds(7.0);
  ok.faults.crashes = {a, b};
  EXPECT_NO_THROW(core::validate(ok));

  // Concurrent windows on *different* targets are legal.
  ok = good;
  b.at = Time::from_seconds(6.0);
  b.tier = 1;
  ok.faults.crashes = {a, b};
  EXPECT_NO_THROW(core::validate(ok));

  // Same rule for slow-node windows...
  bad = good;
  fault::SlowNodeWindow s;
  s.tier = 1;
  s.at = Time::from_seconds(10.0);
  s.duration = Duration::seconds(4);
  s.speed_factor = 0.5;
  auto s2 = s;
  s2.at = Time::from_seconds(12.0);
  bad.faults.slow_nodes = {s, s2};
  try {
    core::validate(bad);
    FAIL() << "expected invalid_argument for overlapping slow-node windows";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("overlapping slow-node"), std::string::npos);
  }

  // ...and for link-degrade windows on the same hop.
  bad = good;
  fault::LinkDegradeWindow l;
  l.hop = 0;
  l.at = Time::from_seconds(3.0);
  l.duration = Duration::seconds(3);
  l.loss_prob = 0.2;
  auto l2 = l;
  l2.at = Time::from_seconds(4.0);
  bad.faults.links = {l, l2};
  try {
    core::validate(bad);
    FAIL() << "expected invalid_argument for overlapping link windows";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("overlapping link-degrade"), std::string::npos);
  }
}

}  // namespace
}  // namespace ntier
