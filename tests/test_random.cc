#include "sim/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace ntier::sim {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkStreamsDecorrelated) {
  Rng parent(7);
  Rng a = parent.fork(0);
  Rng b = parent.fork(1);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkDeterministic) {
  Rng p1(9), p2(9);
  Rng c1 = p1.fork(3), c2 = p2.fork(3);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(c1.next_u64(), c2.next_u64());
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeAndMean) {
  Rng r(5);
  double acc = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double u = r.uniform(2.0, 4.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 4.0);
    acc += u;
  }
  EXPECT_NEAR(acc / n, 3.0, 0.02);
}

TEST(Rng, UniformIndexBounds) {
  Rng r(6);
  EXPECT_EQ(r.uniform_index(0), 0u);
  EXPECT_EQ(r.uniform_index(1), 0u);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.uniform_index(13), 13u);
}

TEST(Rng, ExponentialMeanAndPositivity) {
  Rng r(11);
  const int n = 50000;
  double acc = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = r.exponential(2.5);
    EXPECT_GT(x, 0.0);
    acc += x;
  }
  EXPECT_NEAR(acc / n, 2.5, 0.05);
}

TEST(Rng, ExponentialScv) {
  // SCV of exponential is 1.
  Rng r(12);
  const int n = 50000;
  double s = 0.0, s2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = r.exponential(1.0);
    s += x;
    s2 += x * x;
  }
  const double mean = s / n;
  const double var = s2 / n - mean * mean;
  EXPECT_NEAR(var / (mean * mean), 1.0, 0.06);
}

TEST(Rng, NormalMoments) {
  Rng r(13);
  const int n = 50000;
  double s = 0.0, s2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(10.0, 2.0);
    s += x;
    s2 += x * x;
  }
  const double mean = s / n;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(s2 / n - mean * mean), 2.0, 0.05);
}

TEST(Rng, ParetoBoundsAndTail) {
  Rng r(14);
  int above2x = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = r.pareto(1.0, 2.0);
    EXPECT_GE(x, 1.0);
    if (x > 2.0) ++above2x;
  }
  // P(X > 2) = (1/2)^2 = 0.25 for alpha=2.
  EXPECT_NEAR(above2x / double(n), 0.25, 0.02);
}

TEST(Rng, ChanceFrequency) {
  Rng r(15);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (r.chance(0.3)) ++hits;
  EXPECT_NEAR(hits / double(n), 0.3, 0.02);
}

TEST(Rng, ZipfSkewsLow) {
  Rng r(16);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 20000; ++i) ++counts[r.zipf(5, 1.0)];
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[3]);
}

TEST(Rng, ZipfSingleton) {
  Rng r(17);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.zipf(1, 1.2), 0u);
}

TEST(Rng, ExpDuration) {
  Rng r(18);
  double acc = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const Duration d = r.exp_duration(Duration::millis(100));
    EXPECT_GE(d, Duration::zero());
    acc += d.to_seconds();
  }
  EXPECT_NEAR(acc / n, 0.1, 0.003);
}

}  // namespace
}  // namespace ntier::sim
