#include "cpu/dvfs.h"

#include <gtest/gtest.h>

#include "sim/simulation.h"

namespace ntier::cpu {
namespace {

using sim::Duration;
using sim::Simulation;
using sim::Time;

TEST(HostCapacity, SetCapacityChangesServiceRate) {
  Simulation sim;
  HostCpu host(sim, 1.0);
  auto* vm = host.add_vm("a");
  double done = -1;
  vm->submit(Duration::millis(100), [&] { done = sim.now().to_seconds(); });
  sim.after(Duration::millis(50), [&] { host.set_capacity(0.5); });
  sim.run_all();
  // 50 ms at full speed + remaining 50 ms at half speed = 150 ms.
  EXPECT_NEAR(done, 0.150, 1e-4);
}

TEST(HostCapacity, TotalBusyAggregatesVms) {
  Simulation sim;
  HostCpu host(sim, 2.0);
  auto* a = host.add_vm("a");
  auto* b = host.add_vm("b");
  a->submit(Duration::millis(30), [] {});
  b->submit(Duration::millis(50), [] {});
  sim.run_all();
  EXPECT_NEAR(host.total_busy_core_seconds(), 0.080, 1e-4);
}

TEST(DvfsGovernor, RampsUpUnderLoad) {
  Simulation sim;
  HostCpu host(sim, 1.0);
  auto* vm = host.add_vm("a");
  DvfsGovernor::Config cfg;
  cfg.start_freq = 0.4;
  cfg.min_freq = 0.4;
  cfg.step = 0.2;
  cfg.interval = Duration::millis(100);
  DvfsGovernor gov(sim, host, cfg);
  // Saturating work: governor must step 0.4 -> 1.0.
  for (int i = 0; i < 100; ++i) vm->submit(Duration::millis(20), [] {});
  sim.run_until(Time::from_seconds(1));
  EXPECT_DOUBLE_EQ(gov.frequency(), 1.0);
  // 0.4 -> 0.6 -> 0.8 -> 1.0: three up-steps after the initial apply.
  ASSERT_GE(gov.history().size(), 4u);
  EXPECT_DOUBLE_EQ(gov.history()[0].freq, 0.4);
  EXPECT_DOUBLE_EQ(gov.history()[1].freq, 0.6);
}

TEST(DvfsGovernor, StepsDownWhenIdle) {
  Simulation sim;
  HostCpu host(sim, 1.0);
  host.add_vm("a");
  DvfsGovernor::Config cfg;
  cfg.start_freq = 1.0;
  cfg.min_freq = 0.4;
  cfg.step = 0.2;
  cfg.interval = Duration::millis(100);
  DvfsGovernor gov(sim, host, cfg);
  sim.run_until(Time::from_seconds(1));
  EXPECT_NEAR(gov.frequency(), 0.4, 1e-9);
}

TEST(DvfsGovernor, ParksBetweenThresholds) {
  Simulation sim;
  HostCpu host(sim, 1.0);
  auto* vm = host.add_vm("a");
  DvfsGovernor::Config cfg;
  cfg.start_freq = 0.5;
  cfg.min_freq = 0.3;
  cfg.interval = Duration::millis(100);
  DvfsGovernor gov(sim, host, cfg);
  // ~50% utilization of the scaled capacity: between 0.35 and 0.8.
  std::function<void()> feed = [&] {
    vm->submit(Duration::millis(5), [] {});  // 5ms work every 20ms at 0.5 freq => ~50%
    sim.after(Duration::millis(20), feed);
  };
  feed();
  sim.run_until(Time::from_seconds(2));
  EXPECT_DOUBLE_EQ(gov.frequency(), 0.5);
}

TEST(DvfsGovernor, ThrottledSecondsAccounting) {
  Simulation sim;
  HostCpu host(sim, 1.0);
  host.add_vm("a");
  DvfsGovernor::Config cfg;
  cfg.start_freq = 0.4;
  cfg.min_freq = 0.4;
  cfg.interval = Duration::millis(100);
  DvfsGovernor gov(sim, host, cfg);
  sim.run_until(Time::from_seconds(3));
  EXPECT_NEAR(gov.throttled_seconds(), 3.0, 0.01);
}

TEST(FreezeInjector, PeriodicPauses) {
  Simulation sim;
  HostCpu host(sim, 1.0);
  auto* vm = host.add_vm("a");
  FreezeInjector::Config cfg;
  cfg.first = Time::from_seconds(1);
  cfg.period = Duration::seconds(2);
  cfg.pause = Duration::millis(300);
  FreezeInjector inj(sim, vm, cfg);
  sim.run_until(Time::from_seconds(5.5));
  // Pauses at 1, 3, 5.
  ASSERT_EQ(inj.pause_times().size(), 3u);
  EXPECT_EQ(inj.pause_times()[1], Time::from_seconds(3));
}

TEST(FreezeInjector, PausesStallWork) {
  Simulation sim;
  HostCpu host(sim, 1.0);
  auto* vm = host.add_vm("a");
  FreezeInjector::Config cfg;
  cfg.first = Time::from_seconds(1);
  cfg.period = Duration::seconds(100);
  cfg.pause = Duration::millis(400);
  FreezeInjector inj(sim, vm, cfg);
  double done = -1;
  sim.after(Duration::millis(990), [&] {
    vm->submit(Duration::millis(20), [&] { done = sim.now().to_seconds(); });
  });
  sim.run_until(Time::from_seconds(2));
  // 10 ms served, frozen 1.0-1.4 s, remaining 10 ms -> ~1.41 s.
  EXPECT_NEAR(done, 1.410, 1e-3);
}

}  // namespace
}  // namespace ntier::cpu
