// Tests of the per-request tracing layer: span-tree well-formedness,
// RTO-gap attribution, critical-path exactness, sampling modes, and the
// determinism / non-perturbation guarantees (DESIGN.md invariant 10).
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

#include "core/ctqo_analyzer.h"
#include "core/experiment.h"
#include "core/scenarios.h"
#include "trace/chrome_trace.h"
#include "trace/critical_path.h"
#include "trace/span.h"
#include "trace/tracer.h"

namespace ntier {
namespace {

using sim::Duration;
using sim::Time;
using trace::RequestTrace;
using trace::SpanKind;

// --- RequestTrace / Tracer unit behavior -----------------------------------

TEST(RequestTrace, IdsAreAllocationOrderAndCloseIsIdempotent) {
  RequestTrace t(7);
  const auto root = t.open(SpanKind::kRequest, "client", trace::kNoSpan,
                           Time::from_seconds(0.0));
  const auto hop =
      t.open(SpanKind::kHop, "apache", root, Time::from_seconds(0.001));
  EXPECT_EQ(root, 0u);
  EXPECT_EQ(hop, 1u);
  EXPECT_EQ(t.spans()[hop].parent, root);
  t.close(hop, Time::from_seconds(0.005));
  t.close(hop, Time::from_seconds(9.0));  // ignored: already closed
  EXPECT_EQ(t.spans()[hop].end, Time::from_seconds(0.005));
  t.close(root, Time::from_seconds(0.006));
  EXPECT_EQ(t.total(), Duration::millis(6));
  const auto drop = t.instant(SpanKind::kDrop, "mysql", hop,
                              Time::from_seconds(0.002), /*detail=*/0);
  EXPECT_TRUE(t.spans()[drop].closed());
  EXPECT_EQ(t.spans()[drop].duration(), Duration::zero());
}

TEST(Tracer, OffModeTracesNothing) {
  trace::Tracer tracer({.mode = trace::TraceMode::kOff});
  EXPECT_FALSE(tracer.enabled());
  EXPECT_EQ(tracer.begin(1), nullptr);
  EXPECT_EQ(tracer.begun(), 0u);
}

TEST(Tracer, SampledModeIsDeterministicOneInN) {
  trace::TraceConfig cfg;
  cfg.mode = trace::TraceMode::kSampled;
  cfg.sample_every_n = 10;
  trace::Tracer tracer(cfg);
  for (std::uint64_t id = 1; id <= 40; ++id) {
    const auto t = tracer.begin(id);
    EXPECT_EQ(t != nullptr, id % 10 == 1) << "id " << id;
  }
  EXPECT_EQ(tracer.begun(), 4u);
}

TEST(Tracer, MaxTracesCapDropsButCounts) {
  trace::TraceConfig cfg;
  cfg.mode = trace::TraceMode::kAll;
  cfg.max_traces = 2;
  trace::Tracer tracer(cfg);
  for (std::uint64_t id = 1; id <= 5; ++id) {
    auto t = tracer.begin(id);
    ASSERT_NE(t, nullptr);
    t->open(SpanKind::kRequest, "client", trace::kNoSpan, Time::from_seconds(0));
    t->close(0, Time::from_seconds(1));
    tracer.finish(t, Duration::seconds(1));
  }
  EXPECT_EQ(tracer.retained(), 2u);
  EXPECT_EQ(tracer.dropped_by_cap(), 3u);
}

TEST(CriticalPath, ChargesEveryMicrosecondExactlyOnce) {
  RequestTrace t(1);
  const auto root =
      t.open(SpanKind::kRequest, "client", trace::kNoSpan, Time::from_micros(0));
  const auto hop = t.open(SpanKind::kHop, "apache", root, Time::from_micros(10));
  t.add(SpanKind::kService, "apache", hop, Time::from_micros(20),
        Time::from_micros(50));
  // Overlapping sibling (hedge-style): overlap is charged to the earlier
  // span, the later one takes over after it ends.
  t.add(SpanKind::kDisk, "apache", hop, Time::from_micros(40),
        Time::from_micros(70));
  t.close(hop, Time::from_micros(90));
  t.close(root, Time::from_micros(100));

  const auto cp = trace::critical_path(t);
  EXPECT_EQ(cp.total, Duration::micros(100));
  Duration sum = Duration::zero();
  for (const auto& item : cp.items) sum = sum + item.time;
  EXPECT_EQ(sum, cp.total);  // exact, not approximate
  EXPECT_EQ(cp.by_kind(SpanKind::kService), Duration::micros(30));  // 20..50
  EXPECT_EQ(cp.by_kind(SpanKind::kDisk), Duration::micros(20));     // 50..70
  EXPECT_EQ(cp.by_kind(SpanKind::kHop),
            Duration::micros(10 + 20));  // 10..20 and 70..90
  EXPECT_EQ(cp.by_kind(SpanKind::kRequest),
            Duration::micros(10 + 10));  // 0..10 and 90..100
}

// --- full-system runs -------------------------------------------------------

// Fig 3 consolidation scenario cut to one burst + recovery: still drives
// CTQO at the web tier (drops, RTO gaps, VLRTs) but runs in ~1 s.
core::ExperimentConfig traced_fig3(trace::TraceMode mode) {
  auto cfg = core::scenarios::fig3_consolidation_sync();
  cfg.duration = Duration::seconds(12);
  cfg.trace.mode = mode;
  return cfg;
}

// One shared kAll run for the read-only assertions below.
core::NTierSystem& all_run() {
  static const std::unique_ptr<core::NTierSystem> sys =
      core::run_system(traced_fig3(trace::TraceMode::kAll));
  return *sys;
}

TEST(TraceSystem, SpanTreesAreWellFormedAcrossThreeTiers) {
  const auto& sys = all_run();
  ASSERT_NE(sys.tracer(), nullptr);
  ASSERT_GT(sys.tracer()->retained(), 0u);
  bool saw_three_tier_chain = false;
  for (const auto& t : sys.tracer()->traces()) {
    ASSERT_NE(t, nullptr);
    ASSERT_FALSE(t->empty());
    const auto& spans = t->spans();
    EXPECT_EQ(spans.front().kind, SpanKind::kRequest);
    EXPECT_EQ(spans.front().parent, trace::kNoSpan);
    EXPECT_TRUE(spans.front().closed());  // finished requests only
    std::set<std::string> hops;
    for (std::size_t i = 0; i < spans.size(); ++i) {
      const auto& s = spans[i];
      EXPECT_EQ(s.id, i);
      if (i == 0) continue;
      ASSERT_LT(s.parent, i) << "parents precede children";
      EXPECT_GE(s.begin, spans.front().begin);
      if (s.closed()) {
        EXPECT_GE(s.end, s.begin);
      }
      if (s.kind == SpanKind::kHop) hops.insert(s.site);
    }
    if (hops.count("apache") && hops.count("tomcat") && hops.count("mysql"))
      saw_three_tier_chain = true;
  }
  EXPECT_TRUE(saw_three_tier_chain);
}

TEST(TraceSystem, RtoGapSpansMatchTheRetransmissionSpacing) {
  const auto& sys = all_run();
  // fig 3 uses the paper's fixed 3 s retransmission spacing, so every
  // recorded RTO gap must be exactly one 3 s wait, numbered from 1.
  std::size_t gaps = 0;
  for (const auto& t : sys.tracer()->traces()) {
    for (const auto& s : t->spans()) {
      if (s.kind != SpanKind::kRtoGap) continue;
      ++gaps;
      EXPECT_EQ(s.duration(), Duration::seconds(3));
      EXPECT_GE(s.detail, 1);  // retransmission attempt number
    }
  }
  EXPECT_GT(gaps, 0u) << "the consolidation burst must cause drops";
}

TEST(TraceSystem, CriticalPathSumEqualsEndToEndLatency) {
  const auto& sys = all_run();
  for (const auto& t : sys.tracer()->traces()) {
    const auto cp = trace::critical_path(*t);
    EXPECT_EQ(cp.total, t->total());
    Duration sum = Duration::zero();
    for (const auto& item : cp.items) sum = sum + item.time;
    EXPECT_EQ(sum, cp.total) << "request " << t->request_id();
  }
}

TEST(TraceSystem, VlrtAttributionNamesTheDropTier) {
  auto& sys = all_run();
  const auto report = core::analyze_ctqo(sys);
  const auto table = core::attribute_vlrt(sys.tracer()->traces(), report);
  ASSERT_FALSE(table.rows.empty());
  for (const auto& row : table.rows) {
    EXPECT_GE(row.latency, Duration::seconds(3));
    // The paper's signature: a VLRT is retransmission wait, not work.
    EXPECT_EQ(row.dominant.kind, SpanKind::kRtoGap);
    EXPECT_GE(row.rto_share, 0.9);
    EXPECT_FALSE(row.drop_tier.empty());
  }
}

TEST(TraceSystem, VlrtOnlySamplingKeepsNonVlrtOut) {
  const auto sys = core::run_system(traced_fig3(trace::TraceMode::kVlrtOnly));
  ASSERT_NE(sys->tracer(), nullptr);
  const auto& tracer = *sys->tracer();
  ASSERT_GT(tracer.retained(), 0u);
  for (const auto& t : tracer.traces())
    EXPECT_GE(t->total(), tracer.config().vlrt_threshold);
  // Most traffic is sub-second; tail sampling must discard it.
  EXPECT_GT(tracer.discarded(), 0u);
  EXPECT_LT(tracer.retained(), tracer.begun());
}

TEST(TraceSystem, SameSeedRunsEmitByteIdenticalExports) {
  const auto a = core::run_system(traced_fig3(trace::TraceMode::kVlrtOnly));
  const auto b = core::run_system(traced_fig3(trace::TraceMode::kVlrtOnly));
  EXPECT_EQ(trace::chrome_trace_json(a->tracer()->traces()),
            trace::chrome_trace_json(b->tracer()->traces()));
  EXPECT_EQ(trace::spans_csv(a->tracer()->traces()),
            trace::spans_csv(b->tracer()->traces()));
}

TEST(TraceSystem, TracingDoesNotPerturbTheSimulation) {
  auto off = traced_fig3(trace::TraceMode::kOff);
  auto sys_off = core::run_system(off);
  auto& sys_all = all_run();  // same config, tracing on
  // Tracing schedules no events and draws no randomness, so every
  // latency artifact must be identical with it on or off.
  EXPECT_EQ(sys_off->latency().completed(), sys_all.latency().completed());
  EXPECT_EQ(sys_off->latency().vlrt_count(), sys_all.latency().vlrt_count());
  EXPECT_EQ(sys_off->latency().dropped_request_count(),
            sys_all.latency().dropped_request_count());
  EXPECT_EQ(core::summarize(*sys_off).to_string(),
            core::summarize(sys_all).to_string());
}

}  // namespace
}  // namespace ntier
