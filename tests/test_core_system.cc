#include "core/system.h"

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/report.h"
#include "core/scenarios.h"

namespace ntier::core {
namespace {

using sim::Duration;
using sim::Time;

ExperimentConfig tiny(Architecture arch) {
  ExperimentConfig cfg;
  cfg.system.arch = arch;
  cfg.workload.sessions = 500;
  cfg.duration = Duration::seconds(5);
  return cfg;
}

TEST(NTierSystem, SyncTierNamesAndDepths) {
  NTierSystem sys(tiny(Architecture::kSync));
  EXPECT_EQ(sys.web()->name(), "apache");
  EXPECT_EQ(sys.app()->name(), "tomcat");
  EXPECT_EQ(sys.db()->name(), "mysql");
  EXPECT_EQ(sys.web()->max_sys_q_depth(), 278u);
  EXPECT_EQ(sys.app()->max_sys_q_depth(), 278u);
  EXPECT_EQ(sys.db()->max_sys_q_depth(), 228u);
}

TEST(NTierSystem, Nx1Wiring) {
  auto cfg = tiny(Architecture::kNx1);
  cfg.system.app_threads = 165;
  NTierSystem sys(cfg);
  EXPECT_EQ(sys.web()->name(), "nginx");
  EXPECT_EQ(sys.app()->name(), "tomcat");
  EXPECT_EQ(sys.web()->max_sys_q_depth(), 65535u);
  EXPECT_EQ(sys.app()->max_sys_q_depth(), 293u);  // 165 + 128
}

TEST(NTierSystem, Nx2Wiring) {
  NTierSystem sys(tiny(Architecture::kNx2));
  EXPECT_EQ(sys.app()->name(), "xtomcat");
  EXPECT_EQ(sys.db()->name(), "mysql");
  EXPECT_EQ(sys.app()->max_sys_q_depth(), 65535u);
}

TEST(NTierSystem, Nx3Wiring) {
  NTierSystem sys(tiny(Architecture::kNx3));
  EXPECT_EQ(sys.web()->name(), "nginx");
  EXPECT_EQ(sys.app()->name(), "xtomcat");
  EXPECT_EQ(sys.db()->name(), "xmysql");
  EXPECT_EQ(sys.db()->max_sys_q_depth(), 2000u);
}

TEST(NTierSystem, DownstreamChain) {
  NTierSystem sys(tiny(Architecture::kSync));
  EXPECT_EQ(sys.web()->downstream(), sys.app());
  EXPECT_EQ(sys.app()->downstream(), sys.db());
  EXPECT_EQ(sys.db()->downstream(), nullptr);
}

TEST(NTierSystem, RunProducesTraffic) {
  NTierSystem sys(tiny(Architecture::kSync));
  sys.run();
  EXPECT_GT(sys.clients().completed(), 100u);
  EXPECT_GT(sys.latency().completed(), 100u);
  EXPECT_EQ(sys.clients().failed(), 0u);
}

TEST(NTierSystem, BurstyVmOnlyWithConsolidation) {
  NTierSystem plain(tiny(Architecture::kSync));
  EXPECT_EQ(plain.bursty_vm(), nullptr);
  auto cfg = tiny(Architecture::kSync);
  cfg.bottleneck.kind = MillibottleneckSpec::Kind::kConsolidationBatch;
  cfg.bottleneck.target = Tier::kApp;
  NTierSystem with(cfg);
  ASSERT_NE(with.bursty_vm(), nullptr);
  EXPECT_EQ(with.bursty_vm()->name(), "sysbursty");
  EXPECT_NE(with.interference(), nullptr);
}

TEST(NTierSystem, CollectlOnlyWithLogFlush) {
  NTierSystem plain(tiny(Architecture::kSync));
  EXPECT_EQ(plain.collectl(), nullptr);
  auto cfg = tiny(Architecture::kSync);
  cfg.bottleneck.kind = MillibottleneckSpec::Kind::kLogFlush;
  NTierSystem with(cfg);
  EXPECT_NE(with.collectl(), nullptr);
}

TEST(NTierSystem, SamplerTracksAllTiers) {
  NTierSystem sys(tiny(Architecture::kSync));
  EXPECT_TRUE(sys.sampler().has_series("apache.queue"));
  EXPECT_TRUE(sys.sampler().has_series("tomcat.cpu"));
  EXPECT_TRUE(sys.sampler().has_series("mysql.demand"));
  EXPECT_TRUE(sys.sampler().has_series("dbdisk.busy"));
}

TEST(NTierSystem, AppVcpusRespected) {
  auto cfg = tiny(Architecture::kSync);
  cfg.system.app_vcpus = 4;
  NTierSystem sys(cfg);
  EXPECT_EQ(sys.tier_vm(Tier::kApp)->vcpus(), 4);
}

TEST(NTierSystem, DeterministicAcrossRuns) {
  auto run_once = [] {
    auto cfg = tiny(Architecture::kSync);
    cfg.bottleneck.kind = MillibottleneckSpec::Kind::kConsolidationBatch;
    cfg.bottleneck.batch.first_at = Time::from_seconds(1);
    cfg.seed = 99;
    NTierSystem sys(cfg);
    sys.run();
    return std::tuple(sys.clients().completed(), sys.web()->stats().dropped,
                      sys.latency().vlrt_count());
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(NTierSystem, SeedChangesTraffic) {
  auto run_once = [](std::uint64_t seed) {
    auto cfg = tiny(Architecture::kSync);
    cfg.seed = seed;
    NTierSystem sys(cfg);
    sys.run();
    return sys.clients().completed();
  };
  EXPECT_NE(run_once(1), run_once(2));
}

TEST(Summarize, FieldsPopulated) {
  auto cfg = tiny(Architecture::kSync);
  cfg.name = "smoke";
  auto sys = run_system(cfg);
  auto s = summarize(*sys);
  EXPECT_EQ(s.name, "smoke");
  EXPECT_GT(s.throughput_rps, 10.0);
  ASSERT_EQ(s.tiers.size(), 3u);
  EXPECT_EQ(s.tiers[0].server, "apache");
  EXPECT_GT(s.tiers[1].mean_cpu_pct, 1.0);
  EXPECT_EQ(s.total_drops, 0u);
  EXPECT_FALSE(s.to_string().empty());
}

TEST(ConfigBanner, MentionsArchitecture) {
  auto cfg = tiny(Architecture::kNx3);
  cfg.name = "banner";
  const auto b = config_banner(cfg);
  EXPECT_NE(b.find("banner"), std::string::npos);
  EXPECT_NE(b.find("NX=3"), std::string::npos);
}

TEST(ArchToString, AllValues) {
  EXPECT_STREQ(to_string(Architecture::kSync), "sync (Apache-Tomcat-MySQL)");
  EXPECT_STREQ(to_string(Architecture::kNx1), "NX=1 (Nginx-Tomcat-MySQL)");
  EXPECT_STREQ(to_string(Architecture::kNx2), "NX=2 (Nginx-XTomcat-MySQL)");
  EXPECT_STREQ(to_string(Architecture::kNx3), "NX=3 (Nginx-XTomcat-XMySQL)");
}

TEST(MaxSysQDepthHelper, PaperNumbers) {
  EXPECT_EQ(max_sys_q_depth(150, 128), 278u);
  EXPECT_EQ(max_sys_q_depth(165, 128), 293u);
  EXPECT_EQ(max_sys_q_depth(100, 128), 228u);
}

}  // namespace
}  // namespace ntier::core
