#include "sim/simulation.h"

#include <gtest/gtest.h>

namespace ntier::sim {
namespace {

using namespace ntier::sim::literals;

TEST(Simulation, StartsAtOrigin) {
  Simulation sim;
  EXPECT_EQ(sim.now(), Time::origin());
}

TEST(Simulation, ClockAdvancesToEventTimes) {
  Simulation sim;
  Time seen{};
  sim.after(2_s, [&] { seen = sim.now(); });
  sim.run_until(Time::from_seconds(10));
  EXPECT_EQ(seen, Time::from_seconds(2));
  EXPECT_EQ(sim.now(), Time::from_seconds(10));
}

TEST(Simulation, RunUntilStopsBeforeLaterEvents) {
  Simulation sim;
  int fired = 0;
  sim.after(5_s, [&] { ++fired; });
  sim.run_until(Time::from_seconds(4));
  EXPECT_EQ(fired, 0);
  sim.run_until(Time::from_seconds(6));
  EXPECT_EQ(fired, 1);
}

TEST(Simulation, EventExactlyAtDeadlineRuns) {
  Simulation sim;
  int fired = 0;
  sim.after(5_s, [&] { ++fired; });
  sim.run_until(Time::from_seconds(5));
  EXPECT_EQ(fired, 1);
}

TEST(Simulation, ChainedScheduling) {
  Simulation sim;
  std::vector<double> times;
  std::function<void()> tick = [&] {
    times.push_back(sim.now().to_seconds());
    if (times.size() < 3) sim.after(1_s, tick);
  };
  sim.after(1_s, tick);
  sim.run_all();
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(Simulation, AtSchedulesAbsolute) {
  Simulation sim;
  Time seen{};
  sim.at(Time::from_seconds(3), [&] { seen = sim.now(); });
  sim.run_all();
  EXPECT_EQ(seen, Time::from_seconds(3));
}

TEST(Simulation, CancelledEventSkipped) {
  Simulation sim;
  int fired = 0;
  auto h = sim.after(1_s, [&] { ++fired; });
  h.cancel();
  sim.run_all();
  EXPECT_EQ(fired, 0);
}

TEST(Simulation, EventsExecutedCounter) {
  Simulation sim;
  for (int i = 0; i < 5; ++i) sim.after(Duration::millis(i), [] {});
  sim.run_all();
  EXPECT_EQ(sim.events_executed(), 5u);
}

TEST(Simulation, ZeroDelayRunsAtSameTime) {
  Simulation sim;
  Time seen = Time::max();
  sim.after(1_s, [&] { sim.after(Duration::zero(), [&] { seen = sim.now(); }); });
  sim.run_all();
  EXPECT_EQ(seen, Time::from_seconds(1));
}

}  // namespace
}  // namespace ntier::sim
