// Hot-path memory tests: SlabPool reuse/generation semantics, InlineFn
// inline storage, and the headline zero-allocation guarantee — a warmed
// closed-loop client/server system executes steady-state events without
// touching the global allocator (docs/PERFORMANCE.md).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "cpu/host_core.h"
#include "helpers.h"
#include "net/rto_policy.h"
#include "server/request.h"
#include "server/sync_server.h"
#include "sim/inline_fn.h"
#include "sim/simulation.h"
#include "sim/slab_pool.h"
#include "workload/client.h"

// Global operator new/delete counting hooks. They are process-wide, but
// each gtest case runs in its own ctest process, and every other test in
// this binary only pays two relaxed increments per allocation.
namespace {
std::atomic<std::uint64_t> g_news{0};
std::atomic<std::uint64_t> g_deletes{0};

std::uint64_t news() { return g_news.load(std::memory_order_relaxed); }
std::uint64_t deletes() { return g_deletes.load(std::memory_order_relaxed); }

void* counted_alloc_nothrow(std::size_t n) noexcept {
  g_news.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}

void* counted_alloc(std::size_t n) {
  if (void* p = counted_alloc_nothrow(n)) return p;
  throw std::bad_alloc();
}

void* counted_alloc_aligned(std::size_t n, std::align_val_t al) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(al);
  if (void* p = std::aligned_alloc(a, (n + a - 1) / a * a)) return p;
  throw std::bad_alloc();
}

void counted_free(void* p) noexcept {
  g_deletes.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}
}  // namespace

// Every replaceable form must be covered, or a library allocation can
// pair one allocator's new with the other's delete (stable_sort's
// temporary buffer uses the nothrow form; ASan flags the mismatch).
void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  return counted_alloc_nothrow(n);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return counted_alloc_nothrow(n);
}
void* operator new(std::size_t n, std::align_val_t al) {
  return counted_alloc_aligned(n, al);
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return counted_alloc_aligned(n, al);
}
void* operator new(std::size_t n, std::align_val_t al, const std::nothrow_t&) noexcept {
  g_news.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(al);
  return std::aligned_alloc(a, (n + a - 1) / a * a);
}
void* operator new[](std::size_t n, std::align_val_t al, const std::nothrow_t& t) noexcept {
  return operator new(n, al, t);
}
void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { counted_free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { counted_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { counted_free(p); }

namespace ntier {
namespace {

using sim::Duration;
using sim::Time;

// --- SlabPool unit behaviour ---------------------------------------------

TEST(SlabPool, ReuseOrderIsDeterministicLifo) {
  sim::SlabPool<int> pool;
  auto a = pool.make(1);
  auto b = pool.make(2);
  auto c = pool.make(3);
  int* pa = a.get();
  int* pb = b.get();
  int* pc = c.get();
  EXPECT_EQ(pool.live(), 3u);
  a.reset();
  b.reset();
  c.reset();
  EXPECT_EQ(pool.live(), 0u);
  // LIFO: the most recently released slot is handed out first.
  auto r1 = pool.make(4);
  auto r2 = pool.make(5);
  auto r3 = pool.make(6);
  EXPECT_EQ(r1.get(), pc);
  EXPECT_EQ(r2.get(), pb);
  EXPECT_EQ(r3.get(), pa);
}

TEST(SlabPool, CopyRetainsAndLastResetReleases) {
  sim::SlabPool<int> pool;
  auto a = pool.make(42);
  EXPECT_EQ(a.use_count(), 1u);
  auto b = a;
  EXPECT_EQ(a.use_count(), 2u);
  EXPECT_EQ(a.get(), b.get());
  a.reset();
  EXPECT_EQ(pool.live(), 1u);  // b still owns the slot
  EXPECT_EQ(*b, 42);
  b.reset();
  EXPECT_EQ(pool.live(), 0u);
}

TEST(SlabPool, MoveStealsWithoutTouchingTheRefcount) {
  sim::SlabPool<int> pool;
  auto a = pool.make(7);
  auto b = std::move(a);
  EXPECT_EQ(b.use_count(), 1u);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(*b, 7);
}

TEST(SlabPool, GenerationCheckCatchesStaleHandles) {
  sim::SlabPool<int> pool;
  auto a = pool.make(1);
  sim::PoolHandle<int> h(a);
  EXPECT_FALSE(h.stale());
  EXPECT_EQ(*h.get(), 1);
  a.reset();  // slot released: the generation bumps
  EXPECT_TRUE(h.stale());
  // Recycling the slot must not resurrect the old handle.
  auto b = pool.make(2);
  EXPECT_TRUE(h.stale());
  EXPECT_DEBUG_DEATH((void)h.get(), "stale");
  b.reset();
}

TEST(SlabPool, WarmedPoolServesMakeReleaseCyclesWithoutAllocating) {
  sim::SlabPool<int> pool;
  (void)pool.make(0);  // grows the first slab
  const std::uint64_t n0 = news();
  const std::uint64_t d0 = deletes();
  for (int i = 0; i < 10000; ++i) {
    auto r = pool.make(i);
    auto copy = r;
    copy.reset();
    r.reset();
  }
  EXPECT_EQ(news() - n0, 0u);
  EXPECT_EQ(deletes() - d0, 0u);
}

// --- InlineFn ------------------------------------------------------------

TEST(InlineFn, StoresCallablesInlineAndNeverAllocates) {
  const std::uint64_t n0 = news();
  int hits = 0;
  sim::InlineFn<void()> f([&hits] { ++hits; });
  f();
  sim::InlineFn<void()> g = std::move(f);
  g();
  sim::InlineFn<void()> h = g;  // copyable (the event-queue heap copies)
  h();
  EXPECT_EQ(hits, 3);
  EXPECT_EQ(news() - n0, 0u);
}

TEST(InlineFn, CapacityFitsTheDocumentedCaptureBudget) {
  // The uniform EventFn budget: a pooled ref (16 B) + this (8 B) + a
  // small index still fits; the type itself stays two pointers wide
  // beyond its buffer.
  static_assert(sim::kInlineFnCapacity == 48);
  static_assert(sizeof(sim::EventFn) == sim::kInlineFnCapacity + 2 * sizeof(void*));
}

// --- The headline guarantee ----------------------------------------------

// A closed-loop client population over a one-tier (NX=0) sync server:
// after warm-up, executing >= 10k events allocates exactly nothing —
// requests, transport messages, contexts, and event closures all come
// from warmed slab pools and inline buffers.
TEST(HotPath, SteadyStateEventsDoZeroAllocations) {
  sim::Simulation sim;
  cpu::HostCpu host(sim, 4.0);
  cpu::VmCpu* vm = host.add_vm("web", 4);
  server::AppProfile profile = test::one_class_profile();

  server::SyncConfig scfg;
  scfg.threads_per_process = 64;
  server::SyncServer front(
      sim, "web", vm, &profile,
      [](const server::RequestClassProfile&) {
        return test::cpu_only(Duration::micros(100));
      },
      scfg);

  workload::ClientConfig ccfg;
  ccfg.sessions = 32;
  ccfg.mean_think = Duration::millis(1);
  workload::ClientPool clients(sim, sim::Rng(1234), &profile, &front, ccfg);
  clients.start();

  // Warm-up: pools grow to the run's high-water mark, the event heap and
  // scratch vectors reach steady capacity.
  sim.run_until(Time::from_seconds(2.0));
  const std::uint64_t warm_events = sim.events_executed();
  const std::uint64_t n0 = news();
  const std::uint64_t d0 = deletes();

  sim.run_until(Time::from_seconds(2.5));

  const std::uint64_t measured = sim.events_executed() - warm_events;
  EXPECT_GE(measured, 10000u);
  EXPECT_GT(clients.completed(), 0u);
  EXPECT_EQ(news() - n0, 0u) << "steady-state events allocated";
  EXPECT_EQ(deletes() - d0, 0u) << "steady-state events freed";
}

TEST(HotPath, WarmedWheelSchedulesCancelsAndCascadesWithoutAllocating) {
  // The timing-wheel guarantee behind the engine's zero-allocation
  // claim: on a warmed queue, wheel insert (every level), cancel in
  // every residence, coarse-slot cascades, and per-tick batch
  // execution — including the multi-event seq sort — touch no
  // allocator. The wheel's slot heads and bitmaps are fixed in-object;
  // the slot table, heap, and batch scratch reach their high-water
  // marks during warm-up and are then reused forever.
  sim::EventQueue q;
  sim::Rng rng(7);
  std::uint64_t ran = 0;
  std::vector<sim::EventHandle> handles;
  handles.reserve(8192);  // above the net high-water mark of the churn

  // Delays spanning all four wheel levels plus the beyond-horizon heap
  // fallback, so every residence is exercised while warm.
  static constexpr std::int64_t kDelays[] = {1,          40,        300,
                                             70'000,     1 << 22,   1ll << 30,
                                             (1ll << 32) + 3};

  const auto churn = [&](int rounds) {
    for (int r = 0; r < rounds; ++r) {
      for (int i = 0; i < 64; ++i) {
        const std::int64_t when =
            q.next_time() == Time::max()
                ? kDelays[rng.next_u64() % std::size(kDelays)]
                : q.next_time().count_micros() +
                      kDelays[rng.next_u64() % std::size(kDelays)];
        handles.push_back(
            q.push(Time::from_micros(when), [&ran] { ++ran; }));
      }
      // Cancel a third: hits wheel, heap, and (rarely) batch residents.
      for (int i = 0; i < 21 && !handles.empty(); ++i) {
        const std::size_t j = rng.next_u64() % handles.size();
        handles[j].cancel();
        handles[j] = handles.back();
        handles.pop_back();
      }
      // Drain a few ticks: advance_to cascades across slot and level
      // boundaries as the clock jumps by the random deltas above.
      for (int i = 0; i < 40; ++i) q.run_tick();
    }
  };

  churn(64);  // warm-up: grow slot table, heap, and batch scratch
  const std::uint64_t n0 = news();
  const std::uint64_t d0 = deletes();
  const std::uint64_t ran0 = ran;

  churn(64);  // measured: identical op mix on warmed storage

  EXPECT_GT(ran - ran0, 1000u);
  EXPECT_EQ(news() - n0, 0u) << "warmed wheel allocated";
  EXPECT_EQ(deletes() - d0, 0u) << "warmed wheel freed";
}

}  // namespace
}  // namespace ntier
