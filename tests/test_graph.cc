// Tests of the declarative service-graph engine (src/graph): topology
// parsing and validation, the chain-equivalence contract against
// ChainSystem, the parallel fan-out / fan-in barrier (verified through
// span trees), and the load-balancer policy menu on a replicated group.
#include "graph/graph_system.h"
#include "graph/topology.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "core/chain.h"

namespace ntier::graph {
namespace {

using sim::Duration;
using sim::Time;

// ---------------------------------------------------------------------
// Parsing.

constexpr const char* kDiamondText = R"(
# Diamond: front fans out to catalog and ads; both call the shared db.
graph diamond
seed 42
duration 12s
sessions 1500
node front   kind=sync threads=150 work=cpu:60us,down,cpu:60us
node catalog kind=sync threads=80  work=cpu:150us,down,cpu:50us
node ads     kind=sync threads=80  work=cpu:100us,down,cpu:50us
node db      kind=sync threads=100 work=cpu:400us
edge front catalog
edge front ads
edge catalog db
edge ads db
)";

TEST(Topology, ParsesDiamondGrammar) {
  const GraphConfig cfg = parse_topology(kDiamondText);
  ASSERT_EQ(cfg.nodes.size(), 4u);
  EXPECT_EQ(cfg.name, "diamond");
  EXPECT_EQ(cfg.seed, 42u);
  EXPECT_EQ(cfg.duration, Duration::seconds(12));
  EXPECT_EQ(cfg.workload.sessions, 1500u);
  EXPECT_EQ(node_index(cfg, "front"), 0);
  EXPECT_EQ(node_index(cfg, "db"), 3);
  EXPECT_EQ(node_index(cfg, "nope"), -1);
  EXPECT_EQ(out_edges(cfg, 0), (std::vector<int>{1, 2}));
  EXPECT_EQ(out_edges(cfg, 3), std::vector<int>{});
  EXPECT_FALSE(is_chain(cfg));
  EXPECT_EQ(invalid_reason(cfg), "");
  EXPECT_EQ(cfg.nodes[0].sync.threads_per_process, 150u);
  ASSERT_EQ(cfg.nodes[0].work.size(), 3u);
  EXPECT_EQ(cfg.nodes[0].work[1].kind, server::WorkStep::Kind::kDownstream);
}

TEST(Topology, ParsesReplicationSchedulingAndDisk) {
  const GraphConfig cfg = parse_topology(
      "graph g\n"
      "node a kind=sync sched=edf threads=10 work=cpu:1ms,down\n"
      "node b kind=sync replicas=3 lb=p2c threads=5 work=cpu:2ms,disk:1ms\n"
      "edge a b\n");
  ASSERT_EQ(cfg.nodes.size(), 2u);
  EXPECT_EQ(cfg.nodes[0].sched, Sched::kEdf);
  EXPECT_EQ(cfg.nodes[1].replicas, 3u);
  EXPECT_EQ(cfg.nodes[1].lb, LbPolicy::kPowerOfTwo);
  EXPECT_TRUE(cfg.nodes[1].has_disk);  // disk step implies a device
  EXPECT_EQ(invalid_reason(cfg), "");
}

TEST(Topology, ChainShapedConfigIsDetected) {
  const GraphConfig cfg = parse_topology(
      "graph c\n"
      "node w kind=sync threads=10 work=cpu:1ms,down\n"
      "node d kind=sync threads=10 work=cpu:1ms\n"
      "edge w d\n");
  EXPECT_TRUE(is_chain(cfg));
  EXPECT_EQ(invalid_reason(cfg), "");
}

TEST(Topology, SyntaxErrorsNameTheLine) {
  EXPECT_THROW(parse_topology("node a kind=warp work=cpu:1ms\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_topology("graph g\nnode a work=cpu:1parsec\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_topology("graph g\nedge a\n"), std::invalid_argument);
}

// ---------------------------------------------------------------------
// Validation rejections. Each case perturbs a well-formed graph one way
// and must be named in invalid_reason() / thrown by validate().

GraphConfig two_node() {
  return parse_topology(
      "graph g\n"
      "node a kind=sync threads=10 work=cpu:1ms,down\n"
      "node b kind=sync threads=10 work=cpu:1ms\n"
      "edge a b\n");
}

TEST(Validation, RejectsCycle) {
  auto cfg = two_node();
  cfg.nodes[1].work.push_back({server::WorkStep::Kind::kDownstream, Duration::zero()});
  cfg.edges.push_back({1, 0});
  EXPECT_NE(invalid_reason(cfg), "");
  EXPECT_THROW(validate(cfg), std::invalid_argument);
}

TEST(Validation, RejectsDanglingEdge) {
  auto cfg = two_node();
  cfg.edges.push_back({1, 7});
  EXPECT_NE(invalid_reason(cfg), "");
}

TEST(Validation, RejectsSelfEdgeAndDuplicateEdge) {
  auto cfg = two_node();
  cfg.edges.push_back({1, 1});
  EXPECT_NE(invalid_reason(cfg), "");
  cfg = two_node();
  cfg.edges.push_back({0, 1});
  EXPECT_NE(invalid_reason(cfg), "");
}

TEST(Validation, RejectsZeroReplicas) {
  auto cfg = two_node();
  cfg.nodes[1].replicas = 0;
  EXPECT_NE(invalid_reason(cfg), "");
}

TEST(Validation, RejectsReplicatedEntryNode) {
  auto cfg = two_node();
  cfg.nodes[0].replicas = 2;
  EXPECT_NE(invalid_reason(cfg), "");
}

TEST(Validation, RejectsDuplicateNodeNames) {
  auto cfg = two_node();
  cfg.nodes[1].name = "a";
  EXPECT_NE(invalid_reason(cfg), "");
}

TEST(Validation, RejectsEdfOnAsyncNode) {
  auto cfg = two_node();
  cfg.nodes[1].kind = NodeSpec::Kind::kAsync;
  cfg.nodes[1].sched = Sched::kEdf;
  EXPECT_NE(invalid_reason(cfg), "");
}

TEST(Validation, RejectsDownstreamStepWithoutOutEdges) {
  auto cfg = two_node();
  cfg.nodes[1].work.push_back({server::WorkStep::Kind::kDownstream, Duration::zero()});
  EXPECT_NE(invalid_reason(cfg), "");
}

TEST(Validation, RejectsOutEdgesWithoutDownstreamStep) {
  auto cfg = two_node();
  cfg.nodes[0].work = {{server::WorkStep::Kind::kCpu, Duration::millis(1)}};
  EXPECT_NE(invalid_reason(cfg), "");
}

TEST(Validation, RejectsUnreachableNode) {
  auto cfg = two_node();
  NodeSpec orphan;
  orphan.name = "orphan";
  orphan.work = {{server::WorkStep::Kind::kCpu, Duration::millis(1)}};
  cfg.nodes.push_back(orphan);
  EXPECT_NE(invalid_reason(cfg), "");
}

TEST(Validation, RejectsDiskStepWithoutDisk) {
  auto cfg = two_node();
  cfg.nodes[1].work.push_back({server::WorkStep::Kind::kDisk, Duration::millis(1)});
  cfg.nodes[1].has_disk = false;
  EXPECT_NE(invalid_reason(cfg), "");
}

TEST(Validation, RejectsFreezeNodeOutOfRange) {
  auto cfg = two_node();
  cfg.freeze_node = 5;
  EXPECT_NE(invalid_reason(cfg), "");
}

// ---------------------------------------------------------------------
// Chain equivalence: a chain-shaped GraphConfig must reproduce the
// equivalent ChainConfig run byte-for-byte (same RNG fork schedule, same
// telemetry names, same event count) at the same seed.

core::ChainConfig native_chain() {
  core::ChainConfig cfg;
  cfg.name = "eq";
  auto tier = [](std::string name, std::size_t threads, auto fn, bool disk) {
    core::ChainTierSpec t;
    t.name = std::move(name);
    t.sync.threads_per_process = threads;
    t.sync.max_processes = 1;
    t.program_fn = std::move(fn);
    t.has_disk = disk;
    return t;
  };
  cfg.tiers.push_back(tier("web", 150,
                           core::relay_fn(Duration::micros(60), Duration::micros(60)), false));
  cfg.tiers.push_back(tier("db", 100,
                           core::leaf_fn(Duration::micros(500), Duration::millis(2)), true));
  cfg.workload.sessions = 3000;
  cfg.duration = Duration::seconds(12);
  cfg.freeze_tier = 1;
  cfg.freeze.first = Time::from_seconds(4);
  cfg.freeze.period = Duration::seconds(5);
  cfg.freeze.pause = Duration::millis(900);
  return cfg;
}

GraphConfig graph_chain() {
  GraphConfig cfg = parse_topology(
      "graph eq\n"
      "sessions 3000\n"
      "duration 12s\n"
      "node web kind=sync threads=150 work=cpu:60us,down,cpu:60us\n"
      "node db  kind=sync threads=100 work=cpu:500us,disk:2ms\n"
      "edge web db\n"
      "freeze db first=4s period=5s pause=900ms\n");
  return cfg;
}

// Registry snapshot + run totals, rendered exactly as the bench's
// fingerprint (bench/ext_graph_topologies.cc) so test and CI check the
// same contract.
template <typename System>
std::string fingerprint(System& sys) {
  std::string out;
  char line[256];
  for (const auto& [name, value] : sys.registry().snapshot()) {
    std::snprintf(line, sizeof(line), "%s,%.10g\n", name.c_str(), value);
    out += line;
  }
  std::snprintf(line, sizeof(line), "totals,completed=%llu,vlrt=%llu,drops=%llu,events=%llu\n",
                static_cast<unsigned long long>(sys.clients().completed()),
                static_cast<unsigned long long>(sys.latency().vlrt_count()),
                static_cast<unsigned long long>(sys.total_drops()),
                static_cast<unsigned long long>(sys.simulation().events_executed()));
  out += line;
  return out;
}

TEST(ChainEquivalence, ByteIdenticalToChainSystem) {
  core::ChainSystem native(native_chain());
  native.run();
  GraphSystem asgraph(graph_chain());
  ASSERT_TRUE(is_chain(asgraph.config()));
  asgraph.run();
  const std::string a = fingerprint(native);
  const std::string b = fingerprint(asgraph);
  EXPECT_GT(native.latency().vlrt_count(), 0u)
      << "equivalence run too tame to be evidence";
  EXPECT_EQ(a, b);
}

TEST(ChainEquivalence, HoldsUnderTailPolicyAndFaults) {
  auto ncfg = native_chain();
  auto gcfg = graph_chain();
  policy::TailPolicy pol;
  pol.retry.max_attempts = 2;
  pol.attempt_timeout = Duration::millis(500);
  ncfg.tier_policy = pol;
  gcfg.tier_policy = pol;
  fault::FaultPlan plan;
  fault::LinkDegradeWindow win;
  win.hop = 1;
  win.at = Time::from_seconds(6);
  win.duration = Duration::millis(300);
  win.loss_prob = 0.5;
  plan.links.push_back(win);
  ncfg.faults = plan;
  gcfg.faults = plan;
  core::ChainSystem native(std::move(ncfg));
  native.run();
  GraphSystem asgraph(std::move(gcfg));
  asgraph.run();
  EXPECT_EQ(fingerprint(native), fingerprint(asgraph));
}

// ---------------------------------------------------------------------
// Fan-out / fan-in: a kDownstream step with several out-edges contacts
// every branch in parallel and resumes at the barrier when the last
// branch settles. Verified through the span trees of a traced run.

TEST(FanIn, BarrierJoinsParallelBranchesUnderTracing) {
  GraphConfig cfg = parse_topology(kDiamondText);
  cfg.duration = Duration::seconds(5);
  cfg.workload.sessions = 200;
  cfg.trace.mode = trace::TraceMode::kAll;
  GraphSystem sys(cfg);
  sys.run();
  EXPECT_GT(sys.clients().completed(), 100u);
  EXPECT_EQ(sys.total_drops(), 0u);
  ASSERT_NE(sys.tracer(), nullptr);
  ASSERT_GT(sys.tracer()->retained(), 0u);

  std::size_t checked = 0;
  for (const auto& tr : sys.tracer()->traces()) {
    if (!tr || tr->empty() || !tr->root().closed()) continue;
    // Find the two branch spans of the front tier's fan-out.
    const trace::Span* cat = nullptr;
    const trace::Span* ads = nullptr;
    for (const auto& s : tr->spans()) {
      if (s.kind != trace::SpanKind::kDownstream) continue;
      if (s.site == "front->catalog") cat = &s;
      if (s.site == "front->ads") ads = &s;
    }
    ASSERT_NE(cat, nullptr);
    ASSERT_NE(ads, nullptr);
    ASSERT_TRUE(cat->closed() && ads->closed());
    // Same parent, opened at the same instant (parallel, not serial)...
    EXPECT_EQ(cat->parent, ads->parent);
    EXPECT_EQ(cat->begin, ads->begin);
    // ...and the fan-in barrier holds the parent open until the LAST
    // branch settles.
    const sim::Time join = cat->end < ads->end ? ads->end : cat->end;
    const auto& parent = tr->spans()[cat->parent];
    EXPECT_TRUE(parent.closed());
    EXPECT_GE(parent.end, join);
    if (++checked >= 50) break;
  }
  EXPECT_GT(checked, 0u);
}

// ---------------------------------------------------------------------
// Load-balancer menu on a replicated group: p2c (load-aware, samples
// queue depth per delivery attempt) must route around a frozen replica
// that blind random routing keeps hitting.

GraphConfig replicated(const char* lb) {
  std::string text =
      "graph lbtest\n"
      "sessions 2000\n"
      "duration 12s\n"
      "node front kind=sync threads=400 backlog=512 work=cpu:40us,down,cpu:40us\n"
      "node svc kind=sync replicas=3 lb=";
  text += lb;
  text +=
      " threads=50 work=cpu:2ms\n"
      "edge front svc\n"
      "freeze svc replica=0 first=2s period=3s pause=800ms\n";
  return parse_topology(text);
}

TEST(ReplicaGroup, PowerOfTwoChoicesRoutesAroundFrozenReplica) {
  GraphSystem random_sys(replicated("random"));
  random_sys.run();
  GraphSystem p2c_sys(replicated("p2c"));
  p2c_sys.run();
  ASSERT_NE(p2c_sys.group(1), nullptr);
  EXPECT_EQ(p2c_sys.group(1)->policy(), LbPolicy::kPowerOfTwo);
  EXPECT_EQ(p2c_sys.group(1)->size(), 3u);

  const double p99_random =
      random_sys.latency().histogram().percentile(99.0).to_millis();
  const double p99_p2c =
      p2c_sys.latency().histogram().percentile(99.0).to_millis();
  // Blind random keeps sending ~1/3 of traffic into the frozen replica's
  // queue; p2c compares two sampled queue depths per attempt and walks
  // around it. The gap is orders of magnitude, so 2x is a safe floor.
  EXPECT_GT(p99_random, 2.0 * p99_p2c);
  EXPECT_LE(p2c_sys.latency().vlrt_count(), random_sys.latency().vlrt_count());
}

TEST(ReplicaGroup, RoundRobinSpreadsLoadEvenly) {
  GraphConfig cfg = replicated("rr");
  cfg.freeze_node = -1;  // no freeze: all replicas equal
  GraphSystem sys(cfg);
  sys.run();
  const auto c0 = sys.server_flat(1)->stats().completed;
  const auto c1 = sys.server_flat(2)->stats().completed;
  const auto c2 = sys.server_flat(3)->stats().completed;
  EXPECT_GT(c0, 0u);
  // Round-robin alternates strictly, so replica counts differ by at most
  // the number of in-flight retransmission re-picks (tiny here).
  EXPECT_LE(c0 > c1 ? c0 - c1 : c1 - c0, 2u);
  EXPECT_LE(c1 > c2 ? c1 - c2 : c2 - c1, 2u);
}

}  // namespace
}  // namespace ntier::graph
