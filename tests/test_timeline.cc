#include "metrics/timeline.h"

#include <gtest/gtest.h>

namespace ntier::metrics {
namespace {

using sim::Duration;
using sim::Time;

Timeline make() { return Timeline("q", Duration::millis(50)); }

TEST(Timeline, AddAccumulatesWithinWindow) {
  auto tl = make();
  tl.add(Time::from_micros(10'000), 1.0);
  tl.add(Time::from_micros(40'000), 2.0);
  EXPECT_DOUBLE_EQ(tl.value_at(0), 3.0);
}

TEST(Timeline, WindowBoundaries) {
  auto tl = make();
  tl.add(Time::from_micros(49'999), 1.0);
  tl.add(Time::from_micros(50'000), 1.0);  // next window
  EXPECT_DOUBLE_EQ(tl.value_at(0), 1.0);
  EXPECT_DOUBLE_EQ(tl.value_at(1), 1.0);
}

TEST(Timeline, SetOverwrites) {
  auto tl = make();
  tl.set(Time::from_micros(10), 5.0);
  tl.set(Time::from_micros(20), 7.0);
  EXPECT_DOUBLE_EQ(tl.value_at(0), 7.0);
}

TEST(Timeline, MaxInKeepsPeak) {
  auto tl = make();
  tl.max_in(Time::origin(), 3.0);
  tl.max_in(Time::origin(), 1.0);
  EXPECT_DOUBLE_EQ(tl.value_at(0), 3.0);
}

TEST(Timeline, ValueAtOutOfRangeIsZero) {
  auto tl = make();
  EXPECT_DOUBLE_EQ(tl.value_at(99), 0.0);
  EXPECT_DOUBLE_EQ(tl.value_at_time(Time::from_seconds(100)), 0.0);
}

TEST(Timeline, WindowStart) {
  auto tl = make();
  EXPECT_EQ(tl.window_start(0), Time::origin());
  EXPECT_EQ(tl.window_start(3), Time::from_micros(150'000));
}

TEST(Timeline, MaxValue) {
  auto tl = make();
  tl.set(Time::from_seconds(0.1), 4.0);
  tl.set(Time::from_seconds(0.3), 9.0);
  EXPECT_DOUBLE_EQ(tl.max_value(), 9.0);
}

TEST(Timeline, MeanOverRange) {
  auto tl = make();
  // windows 0..3 hold 1,2,3,4
  for (int i = 0; i < 4; ++i)
    tl.set(Time::from_micros(i * 50'000), i + 1.0);
  EXPECT_DOUBLE_EQ(tl.mean_over(Time::origin(), Time::from_micros(200'000)), 2.5);
  EXPECT_DOUBLE_EQ(tl.mean_over(Time::from_micros(50'000), Time::from_micros(150'000)), 2.5);
}

TEST(Timeline, MeanOverEmptyOrInverted) {
  auto tl = make();
  EXPECT_DOUBLE_EQ(tl.mean_over(Time::from_seconds(1), Time::from_seconds(1)), 0.0);
  EXPECT_DOUBLE_EQ(tl.mean_over(Time::from_seconds(2), Time::from_seconds(1)), 0.0);
}

TEST(Timeline, FirstTimeAtLeast) {
  auto tl = make();
  tl.set(Time::from_micros(100'000), 50.0);
  tl.set(Time::from_micros(200'000), 100.0);
  EXPECT_EQ(tl.first_time_at_least(100.0, Time::origin(), Time::from_seconds(1)),
            Time::from_micros(200'000));
  EXPECT_EQ(tl.first_time_at_least(49.0, Time::origin(), Time::from_seconds(1)),
            Time::from_micros(100'000));
  EXPECT_EQ(tl.first_time_at_least(1000.0, Time::origin(), Time::from_seconds(1)),
            Time::max());
}

TEST(Timeline, FirstTimeRespectsBounds) {
  auto tl = make();
  tl.set(Time::from_micros(100'000), 100.0);
  // window is before `from`
  EXPECT_EQ(tl.first_time_at_least(100.0, Time::from_micros(150'000), Time::from_seconds(1)),
            Time::max());
  // window is at/after `to`
  EXPECT_EQ(tl.first_time_at_least(100.0, Time::origin(), Time::from_micros(100'000)),
            Time::max());
}

TEST(Timeline, WindowsAtLeast) {
  auto tl = make();
  tl.set(Time::from_micros(0), 99.0);
  tl.set(Time::from_micros(50'000), 100.0);
  tl.set(Time::from_micros(150'000), 101.0);
  const auto w = tl.windows_at_least(100.0);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w[0], Time::from_micros(50'000));
  EXPECT_EQ(w[1], Time::from_micros(150'000));
}

TEST(Timeline, TableSkipsTrailingZeros) {
  auto tl = make();
  tl.set(Time::origin(), 1.0);
  tl.set(Time::from_micros(50'000), 0.0);
  const std::string t = tl.to_table();
  EXPECT_NE(t.find("0.00 1.000"), std::string::npos);
  EXPECT_EQ(t.find("0.05"), std::string::npos);
}

}  // namespace
}  // namespace ntier::metrics
