#include "cpu/thread_overhead.h"

#include <gtest/gtest.h>

#include "cpu/host_core.h"
#include "sim/simulation.h"

namespace ntier::cpu {
namespace {

using sim::Duration;

TEST(ThreadOverhead, DefaultIsIdentity) {
  ThreadOverheadModel m;
  EXPECT_DOUBLE_EQ(m.inflation(2000), 1.0);
  EXPECT_EQ(m.inflate(Duration::millis(1), 500), Duration::millis(1));
}

TEST(ThreadOverhead, LinearInflation) {
  ThreadOverheadModel m;
  m.alpha_per_thread = 1.3e-3;
  EXPECT_NEAR(m.inflation(100), 1.13, 1e-9);
  EXPECT_NEAR(m.inflation(1600), 3.08, 1e-9);
  EXPECT_NEAR(m.inflate(Duration::micros(750), 1600).to_seconds(), 0.00231, 1e-6);
}

TEST(ThreadOverhead, GcPauseGrowsWithThreads) {
  ThreadOverheadModel m;
  m.gc_base = Duration::millis(5);
  m.gc_per_thread = Duration::micros(50);
  EXPECT_EQ(m.gc_pause(0), Duration::millis(5));
  EXPECT_EQ(m.gc_pause(100), Duration::millis(10));
}

TEST(ThreadOverhead, ArmGcFreezesVmPeriodically) {
  sim::Simulation sim;
  HostCpu host(sim, 1.0);
  auto* vm = host.add_vm("a");
  ThreadOverheadModel m;
  m.gc_interval = Duration::millis(100);
  m.gc_base = Duration::millis(20);
  arm_gc(sim, *vm, m, [] { return std::size_t{0}; });
  // A 50ms job submitted at t=90ms straddles the GC pause at 100ms.
  double done = -1;
  sim.after(Duration::millis(90), [&] {
    vm->submit(Duration::millis(50), [&] { done = sim.now().to_seconds(); });
  });
  sim.run_until(sim::Time::from_seconds(0.5));
  EXPECT_NEAR(done, 0.090 + 0.050 + 0.020, 1e-3);
}

TEST(ThreadOverhead, ArmGcNoopWithoutInterval) {
  sim::Simulation sim;
  HostCpu host(sim, 1.0);
  auto* vm = host.add_vm("a");
  arm_gc(sim, *vm, ThreadOverheadModel{}, [] { return std::size_t{0}; });
  sim.run_until(sim::Time::from_seconds(1));
  EXPECT_EQ(sim.events_executed(), 0u);
}

}  // namespace
}  // namespace ntier::cpu
