#include "sim/time.h"

#include <gtest/gtest.h>

namespace ntier::sim {
namespace {

using namespace ntier::sim::literals;

TEST(Duration, FactoryConversions) {
  EXPECT_EQ(Duration::micros(5).count_micros(), 5);
  EXPECT_EQ(Duration::millis(5).count_micros(), 5000);
  EXPECT_EQ(Duration::seconds(5).count_micros(), 5'000'000);
}

TEST(Duration, FromSecondsRounds) {
  EXPECT_EQ(Duration::from_seconds(0.0000015).count_micros(), 2);
  EXPECT_EQ(Duration::from_seconds(0.0000014).count_micros(), 1);
  EXPECT_EQ(Duration::from_seconds(-0.0000015).count_micros(), -2);
}

TEST(Duration, ToSeconds) {
  EXPECT_DOUBLE_EQ(Duration::millis(1500).to_seconds(), 1.5);
  EXPECT_DOUBLE_EQ(Duration::millis(1500).to_millis(), 1500.0);
}

TEST(Duration, Arithmetic) {
  EXPECT_EQ((1_s + 500_ms).count_micros(), 1'500'000);
  EXPECT_EQ((1_s - 250_ms).count_micros(), 750'000);
  EXPECT_EQ((100_ms * 3).count_micros(), 300'000);
  EXPECT_EQ((3 * 100_ms).count_micros(), 300'000);
  EXPECT_EQ((1_s / 4).count_micros(), 250'000);
  EXPECT_DOUBLE_EQ(1_s / 250_ms, 4.0);
}

TEST(Duration, ScaleByDouble) {
  EXPECT_EQ((1_s * 2.5).count_micros(), 2'500'000);
  EXPECT_EQ((100_us * 0.5).count_micros(), 50);
}

TEST(Duration, CompoundAssign) {
  Duration d = 1_s;
  d += 500_ms;
  EXPECT_EQ(d, Duration::millis(1500));
  d -= 1_s;
  EXPECT_EQ(d, 500_ms);
}

TEST(Duration, Comparisons) {
  EXPECT_LT(1_ms, 1_s);
  EXPECT_GT(2_s, 1999_ms);
  EXPECT_EQ(1000_us, 1_ms);
  EXPECT_LE(Duration::zero(), 0_us);
}

TEST(Duration, Literals) {
  EXPECT_EQ(1.5_s, Duration::millis(1500));
  EXPECT_EQ(7_s, Duration::seconds(7));
}

TEST(Duration, MaxIsLarge) { EXPECT_GT(Duration::max(), Duration::seconds(1'000'000)); }

TEST(Time, OriginAndOffsets) {
  const Time t0 = Time::origin();
  EXPECT_EQ(t0.count_micros(), 0);
  const Time t1 = t0 + 3_s;
  EXPECT_EQ(t1.to_seconds(), 3.0);
  EXPECT_EQ(t1 - t0, 3_s);
  EXPECT_EQ(t1 - 1_s, Time::from_seconds(2.0));
}

TEST(Time, CompoundAssign) {
  Time t = Time::from_seconds(1.0);
  t += 250_ms;
  EXPECT_EQ(t, Time::from_micros(1'250'000));
}

TEST(Time, Comparisons) {
  EXPECT_LT(Time::origin(), Time::from_seconds(0.001));
  EXPECT_EQ(Time::from_micros(10), Time::origin() + 10_us);
  EXPECT_GT(Time::max(), Time::from_seconds(1e9));
}

TEST(TimeToString, Formats) {
  EXPECT_EQ(to_string(Duration::seconds(3)), "3s");
  EXPECT_EQ(to_string(Duration::millis(50)), "50ms");
  EXPECT_EQ(to_string(Duration::micros(7)), "7us");
  EXPECT_EQ(to_string(Time::from_seconds(1.5)), "1.500s");
}

}  // namespace
}  // namespace ntier::sim
