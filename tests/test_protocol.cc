// Tests of the protocol matrix (net/protocol.h + the plumbing through
// core::apply_protocol and the graph grammar): closed-form RTO
// schedules per profile, admission-mode semantics of the accept queue,
// the SYN-cookie accepted-but-slow path, UDP app-timeout recovery via
// the policy governors, the visible/hidden/absent classifier, and the
// byte-identity contract that applying the default profile changes
// nothing.
#include "net/protocol.h"

#include <gtest/gtest.h>

#include "core/config.h"
#include "core/experiment.h"
#include "core/scenarios.h"
#include "graph/graph_system.h"
#include "graph/topology.h"
#include "net/rto_policy.h"
#include "net/tcp_queue.h"

namespace ntier::net {
namespace {

using sim::Duration;
using sim::Time;

// --- RtoPolicy schedules -------------------------------------------------

TEST(ProtocolRto, LinuxModernSchedule) {
  const auto p = RtoPolicy::linux_modern();
  EXPECT_EQ(p.rto(0), Duration::millis(10));  // tail-loss probe
  EXPECT_EQ(p.rto(1), Duration::millis(200));
  EXPECT_EQ(p.rto(2), Duration::millis(400));
  EXPECT_EQ(p.rto(3), Duration::millis(800));
  EXPECT_EQ(p.rto(4), Duration::millis(1600));
  EXPECT_EQ(p.rto(5), Duration::millis(3200));
  EXPECT_EQ(p.max_retries, 6);
}

TEST(ProtocolRto, MaxRtoCapsTheLadder) {
  RtoPolicy p;
  p.initial = Duration::seconds(1);
  p.multiplier = 2.0;
  p.max_rto = Duration::seconds(4);
  EXPECT_EQ(p.rto(0), Duration::seconds(1));
  EXPECT_EQ(p.rto(2), Duration::seconds(4));   // 4 s, exactly at the cap
  EXPECT_EQ(p.rto(10), Duration::seconds(4));  // 1024 s clipped to 4 s
}

TEST(ProtocolRto, ErpcFixedRttScale) {
  const auto p = RtoPolicy::erpc();
  EXPECT_EQ(p.rto(0), Duration::millis(2));
  EXPECT_EQ(p.rto(63), Duration::millis(2));
  EXPECT_EQ(p.max_retries, 64);
}

TEST(ProtocolRto, TlpNegativeRetryClampsToProbe) {
  EXPECT_EQ(RtoPolicy::linux_modern().rto(-5), Duration::millis(10));
}

TEST(ProtocolRto, LegacySchedulesUnchanged) {
  // The seed profiles predate tlp/max_rto; both fields must stay inert.
  EXPECT_EQ(RtoPolicy::fixed3s().rto(4), Duration::seconds(3));
  EXPECT_EQ(RtoPolicy::rhel6().rto(2), Duration::seconds(12));
  EXPECT_EQ(RtoPolicy::rhel6().tlp, Duration::zero());
  EXPECT_EQ(RtoPolicy::rhel6().max_rto, Duration::zero());
}

// --- ProtocolProfile -----------------------------------------------------

TEST(ProtocolProfile, ByNameRoundTripsEveryProfile) {
  const auto all = ProtocolProfile::names();
  EXPECT_EQ(all.size(), 6u);
  for (const auto& n : all) {
    const auto p = ProtocolProfile::by_name(n);
    ASSERT_TRUE(p.has_value()) << n;
    EXPECT_EQ(p->name, n);
  }
  EXPECT_FALSE(ProtocolProfile::by_name("rhel7").has_value());
  EXPECT_FALSE(ProtocolProfile::by_name("").has_value());
}

TEST(ProtocolProfile, ProfileSemantics) {
  const auto cookies = ProtocolProfile::syn_cookies();
  EXPECT_EQ(cookies.admission, AdmissionMode::kSynCookies);
  EXPECT_GT(cookies.cookie_penalty, Duration::zero());

  const auto udp = ProtocolProfile::udp_apptimeout();
  EXPECT_EQ(udp.transport, TransportKind::kUdpAppTimeout);
  EXPECT_EQ(udp.rto.max_retries, 0);  // the stack never retransmits
  EXPECT_GT(udp.app_attempts, 1);
  EXPECT_GT(udp.app_timeout, Duration::zero());

  const auto erpc = ProtocolProfile::erpc();
  EXPECT_EQ(erpc.transport, TransportKind::kErpc);
  EXPECT_EQ(erpc.admission, AdmissionMode::kBypass);
}

TEST(ProtocolProfile, DefaultEqualsFixed3s) {
  // A default-constructed profile IS the seed stack, so applying
  // fixed3s() can never change a default config.
  const ProtocolProfile d;
  const auto f = ProtocolProfile::fixed3s();
  EXPECT_EQ(d.name, f.name);
  EXPECT_EQ(d.admission, f.admission);
  EXPECT_EQ(d.rto.initial, f.rto.initial);
  EXPECT_EQ(d.cookie_penalty, f.cookie_penalty);
}

// --- classify_ctqo -------------------------------------------------------

TEST(ClassifyCtqo, Taxonomy) {
  const auto s = [](double x) { return Duration::from_seconds(x); };
  EXPECT_EQ(classify_ctqo(0, s(9.0)), CtqoVisibility::kAbsent);
  EXPECT_EQ(classify_ctqo(0, s(0.0)), CtqoVisibility::kAbsent);
  EXPECT_EQ(classify_ctqo(100, s(3.1)), CtqoVisibility::kVisible);
  EXPECT_EQ(classify_ctqo(100, s(2.5)), CtqoVisibility::kVisible);  // at bar
  EXPECT_EQ(classify_ctqo(100, s(0.4)), CtqoVisibility::kHidden);
  // Custom threshold.
  EXPECT_EQ(classify_ctqo(1, s(1.0), s(0.5)), CtqoVisibility::kVisible);
}

TEST(ClassifyCtqo, ToStrings) {
  EXPECT_STREQ(to_string(CtqoVisibility::kVisible), "visible");
  EXPECT_STREQ(to_string(CtqoVisibility::kHidden), "hidden");
  EXPECT_STREQ(to_string(CtqoVisibility::kAbsent), "absent");
  EXPECT_STREQ(to_string(AdmissionMode::kTcpDrop), "tcp_drop");
  EXPECT_STREQ(to_string(AdmissionMode::kSynCookies), "syn_cookies");
  EXPECT_STREQ(to_string(AdmissionMode::kBypass), "bypass");
  EXPECT_STREQ(to_string(TransportKind::kUdpAppTimeout), "udp_apptimeout");
}

// --- TcpQueue admission modes --------------------------------------------

TEST(TcpQueueAdmission, SynCookiesOverflowAdmitsInsteadOfDropping) {
  TcpQueue q(1);
  q.set_mode(AdmissionMode::kSynCookies);
  EXPECT_EQ(q.try_admit(Time::origin()), TcpQueue::Admit::kSlot);
  EXPECT_EQ(q.try_admit(Time::origin()), TcpQueue::Admit::kCookie);
  EXPECT_EQ(q.depth(), 2u);  // beyond capacity, by design
  EXPECT_EQ(q.drops(), 0u);
  EXPECT_EQ(q.cookie_admits(), 1u);
  EXPECT_TRUE(q.drop_times().empty());
}

TEST(TcpQueueAdmission, BypassNeverRefuses) {
  TcpQueue q(0);
  q.set_mode(AdmissionMode::kBypass);
  for (int i = 0; i < 5; ++i)
    EXPECT_EQ(q.try_admit(Time::origin()), TcpQueue::Admit::kSlot);
  EXPECT_EQ(q.depth(), 5u);
  EXPECT_EQ(q.drops(), 0u);
  EXPECT_EQ(q.cookie_admits(), 0u);
}

TEST(TcpQueueAdmission, DefaultModeIsSeedBehaviour) {
  TcpQueue q(1);
  EXPECT_EQ(q.mode(), AdmissionMode::kTcpDrop);
  EXPECT_TRUE(q.try_push(Time::origin()));
  EXPECT_FALSE(q.try_push(Time::origin()));
  EXPECT_EQ(q.drops(), 1u);
}

}  // namespace
}  // namespace ntier::net

namespace ntier::core {
namespace {

using sim::Duration;
using sim::Time;

// The Fig 3 millibottleneck shortened for test runtime: well past the
// CTQO onset, so the kTcpDrop baseline reliably drops.
ExperimentConfig overloaded(const net::ProtocolProfile& p) {
  auto cfg = scenarios::fig3_consolidation_sync();
  cfg.duration = Duration::seconds(12);
  apply_protocol(cfg, p);
  return cfg;
}

TEST(ApplyProtocol, Fixed3sIsByteIdenticalNoOp) {
  auto run_events = [](bool apply) {
    ExperimentConfig cfg;
    cfg.workload.sessions = 800;
    cfg.duration = Duration::seconds(5);
    if (apply) apply_protocol(cfg, net::ProtocolProfile::fixed3s());
    auto sys = run_system(cfg);
    const auto s = summarize(*sys);
    return std::tuple(sys->simulation().events_executed(), s.throughput_rps,
                      s.latency.count, s.total_drops);
  };
  EXPECT_EQ(run_events(false), run_events(true));
}

TEST(ApplyProtocol, SynCookiesConvertsDropsIntoSlowAdmits) {
  auto base = run_system(overloaded(net::ProtocolProfile::fixed3s()));
  const auto bs = summarize(*base);
  ASSERT_GT(bs.total_drops, 0u);  // the baseline phenomenon is present

  auto sys = run_system(overloaded(net::ProtocolProfile::syn_cookies()));
  const auto s = summarize(*sys);
  EXPECT_EQ(s.total_drops, 0u);  // overflow became admits, not drops
  std::uint64_t cookies = 0;
  for (auto* srv : {base->web(), base->app(), base->db()}) (void)srv;
  for (auto* srv : {sys->web(), sys->app(), sys->db()})
    if (const auto* q = srv->accept_queue()) cookies += q->cookie_admits();
  EXPECT_GT(cookies, 0u);
  // No drop -> no 3 s retransmit modes: the tail collapses vs baseline.
  EXPECT_LT(s.latency.p999.to_seconds(), bs.latency.p999.to_seconds());
}

TEST(ApplyProtocol, UdpAppTimeoutRecoversViaGovernors) {
  auto base = run_system(overloaded(net::ProtocolProfile::fixed3s()));
  const auto bs = summarize(*base);
  auto sys = run_system(overloaded(net::ProtocolProfile::udp_apptimeout()));
  const auto s = summarize(*sys);
  // The stack abandons every refused attempt immediately...
  EXPECT_GT(s.retransmit_exhausted, 0u);
  // ...and the app-level governors re-send it.
  EXPECT_GT(s.client_retries, 0u);
  EXPECT_GT(s.latency.count, 1000u);
  // App-level 200 ms timers instead of 3 s kernel timers: what remains
  // of the tail is bottleneck queueing, not retransmission stacking.
  EXPECT_LT(s.latency.p999.to_seconds(), bs.latency.p999.to_seconds());
}

TEST(ApplyProtocol, ErpcBypassEliminatesOverflow) {
  auto sys = run_system(overloaded(net::ProtocolProfile::erpc()));
  const auto s = summarize(*sys);
  EXPECT_EQ(s.total_drops, 0u);
  EXPECT_EQ(s.retransmit_exhausted, 0u);
  EXPECT_EQ(net::classify_ctqo(s.total_drops, s.latency.p999),
            net::CtqoVisibility::kAbsent);
}

TEST(ApplyProtocol, LinuxModernHidesCtqo) {
  auto sys = run_system(overloaded(net::ProtocolProfile::linux_modern()));
  const auto s = summarize(*sys);
  // Drops still happen (the cause is untouched)...
  EXPECT_GT(s.total_drops, 0u);
  // ...but sub-second recovery keeps the tail under the visibility bar.
  EXPECT_EQ(net::classify_ctqo(s.total_drops, s.latency.p999),
            net::CtqoVisibility::kHidden);
}

}  // namespace
}  // namespace ntier::core

namespace ntier::graph {
namespace {

using sim::Duration;

constexpr const char* kChainText = R"(
graph proto-chain
seed 7
duration 6s
sessions 900
node front kind=sync threads=150 work=cpu:60us,down,cpu:60us
node mid   kind=sync threads=80  work=cpu:150us,down,cpu:50us
node back  kind=sync threads=100 work=cpu:400us
edge front mid
edge mid back
)";

TEST(GraphProtocol, ProtoDirectiveParses) {
  auto cfg = parse_topology(std::string(kChainText) + "proto syn_cookies\n");
  EXPECT_EQ(cfg.protocol, "syn_cookies");
  EXPECT_EQ(cfg.admission, net::AdmissionMode::kSynCookies);
  EXPECT_GT(cfg.cookie_penalty, Duration::zero());
  EXPECT_TRUE(invalid_reason(cfg).empty());
}

TEST(GraphProtocol, UnknownProtoRejected) {
  EXPECT_THROW(parse_topology(std::string(kChainText) + "proto tcp_vegas\n"),
               std::invalid_argument);
  EXPECT_THROW(
      parse_topology(std::string(kChainText) + "edge front back proto=nope\n"),
      std::invalid_argument);
}

TEST(GraphProtocol, PerEdgeProtoParsesAndLeavesChainPath) {
  // linux_modern keeps the receiver's admission mode at tcp_drop, so
  // the override is valid on a chain edge — but it still forces the
  // general per-route transport path off the chain fast path.
  auto cfg = parse_topology(
      "graph edgeproto\nsessions 500\nduration 4s\n"
      "node front kind=sync threads=150 work=cpu:60us,down,cpu:60us\n"
      "node back  kind=sync threads=100 work=cpu:400us\n"
      "edge front back proto=linux_modern\n");
  ASSERT_EQ(cfg.edges.size(), 1u);
  EXPECT_EQ(cfg.edges[0].proto, "linux_modern");
  EXPECT_TRUE(invalid_reason(cfg).empty());
  EXPECT_FALSE(is_chain(cfg));  // per-edge protocols force general routing
}

TEST(GraphProtocol, ConflictingAdmissionIntoOneNodeRejected) {
  // back receives an erpc (bypass) edge and a default tcp_drop edge.
  auto cfg = parse_topology(kChainText);
  EdgeSpec extra{0, 2, {}};
  extra.proto = "erpc";
  cfg.edges.push_back(extra);
  const auto why = invalid_reason(cfg);
  EXPECT_NE(why.find("conflicting admission"), std::string::npos) << why;
}

TEST(GraphProtocol, ProtoFixed3sIsByteIdenticalNoOp) {
  auto run_events = [](const std::string& extra) {
    auto cfg = parse_topology(std::string(kChainText) + extra);
    GraphSystem sys(std::move(cfg));
    sys.run();
    return std::tuple(sys.simulation().events_executed(),
                      sys.latency().completed());
  };
  EXPECT_EQ(run_events(""), run_events("proto fixed3s\n"));
}

TEST(GraphProtocol, GraphWideProtoChangesBehaviour) {
  auto run_drops = [](const std::string& extra) {
    // A periodic freeze of the back node makes the accept queues
    // overflow: the classic millibottleneck drop site.
    auto cfg = parse_topology(std::string(kChainText) +
                              "freeze back first=1s period=2s pause=900ms\n" +
                              extra);
    cfg.workload.sessions = 3000;
    GraphSystem sys(std::move(cfg));
    sys.run();
    std::uint64_t drops = 0, cookies = 0;
    for (std::size_t i = 0; i < sys.flat_count(); ++i) {
      drops += sys.server_flat(i)->stats().dropped;
      if (const auto* q = sys.server_flat(i)->accept_queue())
        cookies += q->cookie_admits();
    }
    return std::pair(drops, cookies);
  };
  const auto base = run_drops("");
  const auto cookies = run_drops("proto syn_cookies\n");
  EXPECT_GT(base.first, 0u);      // tcp_drop baseline drops
  EXPECT_EQ(cookies.first, 0u);   // cookies never drop...
  EXPECT_GT(cookies.second, 0u);  // ...they admit on the slow path
}

}  // namespace
}  // namespace ntier::graph
