// Checks that the canned scenarios encode the paper's published
// parameters (Fig 13 and §III-§V).
#include "core/scenarios.h"

#include <gtest/gtest.h>

namespace ntier::core::scenarios {
namespace {

using sim::Duration;
using sim::Time;

TEST(Scenarios, Fig1WorkloadsAndDuration) {
  for (std::size_t wl : {4000u, 7000u, 8000u}) {
    const auto cfg = fig1_multimodal(wl);
    EXPECT_EQ(cfg.workload.sessions, wl);
    EXPECT_EQ(cfg.system.arch, Architecture::kSync);
    EXPECT_GE(cfg.duration, Duration::seconds(200));
    EXPECT_EQ(cfg.bottleneck.kind, MillibottleneckSpec::Kind::kConsolidationMmpp);
    EXPECT_DOUBLE_EQ(cfg.bottleneck.mmpp.burst.burst_index, 100.0);  // paper: burst index 100
  }
}

TEST(Scenarios, Fig3IsSyncConsolidationOnApp) {
  const auto cfg = fig3_consolidation_sync();
  EXPECT_EQ(cfg.system.arch, Architecture::kSync);
  EXPECT_EQ(cfg.bottleneck.kind, MillibottleneckSpec::Kind::kConsolidationBatch);
  EXPECT_EQ(cfg.bottleneck.target, Tier::kApp);
  EXPECT_EQ(cfg.bottleneck.batch.batch_size, 400u);  // "batch of 400 ViewStory"
  EXPECT_EQ(cfg.workload.sessions, 7000u);           // paper §IV-A
  EXPECT_EQ(cfg.workload.mean_think, Duration::seconds(7));
}

TEST(Scenarios, Fig5LogFlushEvery30s) {
  const auto cfg = fig5_logflush_sync();
  EXPECT_EQ(cfg.bottleneck.kind, MillibottleneckSpec::Kind::kLogFlush);
  EXPECT_EQ(cfg.bottleneck.logflush.flush_period, Duration::seconds(30));
  EXPECT_EQ(cfg.bottleneck.logflush.first_flush, Time::from_seconds(10));
  EXPECT_EQ(cfg.system.app_vcpus, 4);  // paper: Tomcat scaled to 4 cores
}

TEST(Scenarios, Fig7Nx1TomcatDepth) {
  const auto cfg = fig7_nx1();
  EXPECT_EQ(cfg.system.arch, Architecture::kNx1);
  EXPECT_EQ(cfg.system.app_threads, 165u);  // MaxSysQDepth 165+128=293
  EXPECT_EQ(cfg.bottleneck.target, Tier::kApp);
}

TEST(Scenarios, Fig8TargetsDb) {
  const auto cfg = fig8_nx2_mysql();
  EXPECT_EQ(cfg.system.arch, Architecture::kNx2);
  EXPECT_EQ(cfg.bottleneck.target, Tier::kDb);
}

TEST(Scenarios, Fig9TargetsApp) {
  const auto cfg = fig9_nx2_xtomcat();
  EXPECT_EQ(cfg.system.arch, Architecture::kNx2);
  EXPECT_EQ(cfg.bottleneck.target, Tier::kApp);
}

TEST(Scenarios, Fig10And11AreNx3) {
  EXPECT_EQ(fig10_nx3_xtomcat().system.arch, Architecture::kNx3);
  const auto f11 = fig11_nx3_logflush();
  EXPECT_EQ(f11.system.arch, Architecture::kNx3);
  EXPECT_EQ(f11.bottleneck.kind, MillibottleneckSpec::Kind::kLogFlush);
}

TEST(Scenarios, Fig12SyncUses2000Threads) {
  const auto cfg = fig12_point(Architecture::kSync, 1600);
  EXPECT_EQ(cfg.system.web_threads, 2000u);
  EXPECT_EQ(cfg.system.app_threads, 2000u);
  EXPECT_EQ(cfg.system.db_threads, 2000u);
  EXPECT_GT(cfg.system.sync_overhead.alpha_per_thread, 0.0);
  EXPECT_EQ(cfg.workload.sessions, 1600u);
  EXPECT_EQ(cfg.workload.mean_think, Duration::zero());
}

TEST(Scenarios, Fig12AsyncHasNoOverheadModel) {
  const auto cfg = fig12_point(Architecture::kNx3, 400);
  EXPECT_EQ(cfg.system.arch, Architecture::kNx3);
  EXPECT_DOUBLE_EQ(cfg.system.sync_overhead.alpha_per_thread, 0.0);
}

TEST(Scenarios, DefaultRtoIsThreeSeconds) {
  const auto cfg = fig3_consolidation_sync();
  EXPECT_EQ(cfg.workload.client_rto.rto(0), Duration::seconds(3));
  EXPECT_EQ(cfg.system.tier_rto.rto(0), Duration::seconds(3));
}

TEST(Scenarios, InterferenceIsViewStoryScale) {
  const auto cfg = fig3_consolidation_sync();
  // 400 jobs x 1.5 ms = 0.6 s of CPU per burst: a sub-second (milli-)
  // bottleneck once fair sharing stretches it.
  const double burst_work_s = cfg.bottleneck.batch.batch_size *
                              cfg.bottleneck.batch.demand_per_job.to_seconds();
  EXPECT_GT(burst_work_s, 0.2);
  EXPECT_LT(burst_work_s, 1.0);
}

}  // namespace
}  // namespace ntier::core::scenarios
