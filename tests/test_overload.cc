// Tests of the overload-control layer: admission policies, the CoDel /
// adaptive-LIFO queue-management control laws, the pop_next dequeue
// discipline, the shed->retry contract at system level, and the
// metastability verdict engine.
#include <gtest/gtest.h>

#include <deque>

#include "core/experiment.h"
#include "core/metastability.h"
#include "core/scenarios.h"
#include "policy/overload/overload.h"
#include "sim/time.h"

namespace ntier {
namespace {

using policy::overload::AdmissionController;
using policy::overload::Kind;
using policy::overload::OverloadPolicy;
using Decision = AdmissionController::Decision;
using sim::Duration;
using sim::Time;

// --- policy validation -----------------------------------------------------

TEST(OverloadPolicy, InvalidReasonCatchesNonsense) {
  OverloadPolicy p;  // kNone is always fine
  EXPECT_TRUE(policy::overload::invalid_reason(p).empty());

  p.kind = Kind::kQueueCap;
  p.queue_cap = 0;
  EXPECT_FALSE(policy::overload::invalid_reason(p).empty());

  p = OverloadPolicy{};
  p.kind = Kind::kTokenBucket;
  p.bucket_rate = -1.0;
  EXPECT_FALSE(policy::overload::invalid_reason(p).empty());
  p.bucket_rate = 100.0;
  p.bucket_burst = 0.5;  // can never hold a whole token
  EXPECT_FALSE(policy::overload::invalid_reason(p).empty());

  p = OverloadPolicy{};
  p.kind = Kind::kCoDel;
  p.codel_target = Duration::zero();
  EXPECT_FALSE(policy::overload::invalid_reason(p).empty());

  p = OverloadPolicy{};
  p.kind = Kind::kAdaptiveLifo;
  p.lifo_threshold = 0;
  EXPECT_FALSE(policy::overload::invalid_reason(p).empty());

  p = OverloadPolicy{};
  p.kind = Kind::kBrownout;
  p.degrade_above = 32;
  p.brownout_cap = 16;  // sheds before it ever degrades
  EXPECT_FALSE(policy::overload::invalid_reason(p).empty());
}

TEST(OverloadPolicy, ConfigValidationRejectsBadTierPolicies) {
  auto cfg = core::scenarios::fig3_consolidation_sync();
  cfg.overload.app.kind = Kind::kQueueCap;
  cfg.overload.app.queue_cap = 0;
  EXPECT_THROW(core::validate(cfg), std::invalid_argument);
}

// --- admission-time policies -----------------------------------------------

TEST(QueueCap, ShedsOnceInSystemReachesCap) {
  OverloadPolicy p;
  p.kind = Kind::kQueueCap;
  p.queue_cap = 4;
  AdmissionController c(p);
  const Time t = Time::from_seconds(1.0);
  EXPECT_EQ(c.on_offer(t, 3), Decision::kAdmit);
  EXPECT_EQ(c.on_offer(t, 4), Decision::kShed);
  EXPECT_EQ(c.on_offer(t, 400), Decision::kShed);
  EXPECT_EQ(c.stats().admitted, 1u);
  EXPECT_EQ(c.stats().shed_admission, 2u);
  EXPECT_EQ(c.stats().total_shed(), 2u);
}

TEST(TokenBucket, RefillsDeterministicallyAndCapsAtBurst) {
  OverloadPolicy p;
  p.kind = Kind::kTokenBucket;
  p.bucket_rate = 10.0;  // tokens per second
  p.bucket_burst = 2.0;
  AdmissionController c(p);
  // Starts full: two admits, then dry.
  EXPECT_EQ(c.on_offer(Time::from_seconds(0.0), 0), Decision::kAdmit);
  EXPECT_EQ(c.on_offer(Time::from_seconds(0.0), 0), Decision::kAdmit);
  EXPECT_EQ(c.on_offer(Time::from_seconds(0.0), 0), Decision::kShed);
  // 50 ms earns half a token: still dry.
  EXPECT_EQ(c.on_offer(Time::from_seconds(0.05), 0), Decision::kShed);
  // Another 100 ms brings it to 1.5: one admit, then dry again.
  EXPECT_EQ(c.on_offer(Time::from_seconds(0.15), 0), Decision::kAdmit);
  EXPECT_EQ(c.on_offer(Time::from_seconds(0.15), 0), Decision::kShed);
  // A long idle stretch refills to the burst cap, not beyond.
  EXPECT_EQ(c.on_offer(Time::from_seconds(10.0), 0), Decision::kAdmit);
  EXPECT_EQ(c.on_offer(Time::from_seconds(10.0), 0), Decision::kAdmit);
  EXPECT_EQ(c.on_offer(Time::from_seconds(10.0), 0), Decision::kShed);
  EXPECT_EQ(c.stats().admitted, 5u);
  EXPECT_EQ(c.stats().shed_admission, 4u);
}

TEST(Brownout, DegradesUnderPressureShedsAtTheCap) {
  OverloadPolicy p;
  p.kind = Kind::kBrownout;
  p.degrade_above = 4;
  p.brownout_cap = 8;
  AdmissionController c(p);
  const Time t = Time::from_seconds(1.0);
  EXPECT_EQ(c.on_offer(t, 3), Decision::kAdmit);
  EXPECT_EQ(c.on_offer(t, 4), Decision::kDegrade);
  EXPECT_EQ(c.on_offer(t, 7), Decision::kDegrade);
  EXPECT_EQ(c.on_offer(t, 8), Decision::kShed);
  // Degraded offers count as admitted (they enter the system).
  EXPECT_EQ(c.stats().admitted, 3u);
  EXPECT_EQ(c.stats().degraded, 2u);
  EXPECT_EQ(c.stats().shed_admission, 1u);
}

// --- dequeue-time control laws ---------------------------------------------

TEST(CoDel, ShedsOnlyAfterSojournStaysAboveTargetForAnInterval) {
  OverloadPolicy p;
  p.kind = Kind::kCoDel;
  p.codel_target = Duration::millis(10);
  p.codel_interval = Duration::millis(100);
  AdmissionController c(p);
  const Duration high = Duration::millis(20);
  // Healthy sojourns never shed.
  EXPECT_FALSE(c.shed_on_dequeue(Time::from_seconds(0.0), Duration::millis(1)));
  // First above-target observation arms the interval; still served.
  EXPECT_FALSE(c.shed_on_dequeue(Time::from_seconds(0.0), high));
  EXPECT_FALSE(c.shed_on_dequeue(Time::from_seconds(0.05), high));
  // Above target for a full interval: enter the dropping state.
  EXPECT_TRUE(c.shed_on_dequeue(Time::from_seconds(0.1), high));
  // Next drop is scheduled one interval out (drop_count = 1).
  EXPECT_FALSE(c.shed_on_dequeue(Time::from_seconds(0.15), high));
  EXPECT_TRUE(c.shed_on_dequeue(Time::from_seconds(0.2), high));
  EXPECT_EQ(c.stats().shed_dequeue, 2u);
  // A below-target sojourn exits the dropping state entirely.
  EXPECT_FALSE(c.shed_on_dequeue(Time::from_seconds(0.25), Duration::millis(1)));
  EXPECT_FALSE(c.shed_on_dequeue(Time::from_seconds(0.26), high));  // re-arming
  EXPECT_EQ(c.stats().shed_dequeue, 2u);
}

TEST(CoDel, DropScheduleTightensBySqrtLaw) {
  OverloadPolicy p;
  p.kind = Kind::kCoDel;
  p.codel_target = Duration::millis(10);
  p.codel_interval = Duration::millis(100);
  AdmissionController c(p);
  const Duration high = Duration::millis(50);
  // Arm and enter dropping at t = 0.1.
  EXPECT_FALSE(c.shed_on_dequeue(Time::from_seconds(0.0), high));
  EXPECT_TRUE(c.shed_on_dequeue(Time::from_seconds(0.1), high));
  // Walk forward in 10 ms steps for one second; count sheds. The
  // inverse-sqrt gap (100, 70.7, 57.7, 50 ms, ...) must yield strictly
  // more drops than a fixed one-per-interval law would (10 in 1 s).
  std::uint64_t before = c.stats().shed_dequeue;
  for (int i = 11; i <= 110; ++i)
    c.shed_on_dequeue(Time::from_seconds(0.01 * i), high);
  const std::uint64_t drops = c.stats().shed_dequeue - before;
  EXPECT_GT(drops, 10u);
  EXPECT_LT(drops, 100u);  // but nowhere near shed-everything
}

struct Entry {
  int id = 0;
  Time enq;
};

TEST(AdaptiveLifo, FifoWhenShallowNewestFirstWhenDeep) {
  OverloadPolicy p;
  p.kind = Kind::kAdaptiveLifo;
  p.lifo_threshold = 3;
  p.lifo_max_sojourn = Duration::seconds(1);
  AdmissionController c(p);
  const Time now = Time::from_seconds(0.5);
  int shed_ids = 0;
  auto enq = [](const Entry& e) { return e.enq; };
  auto shed = [&](Entry e) { shed_ids += e.id; };

  std::deque<Entry> q = {{1, Time::from_seconds(0.1)}, {2, Time::from_seconds(0.2)}};
  // Below threshold: plain FIFO.
  auto got = policy::overload::pop_next(&c, q, now, enq, shed);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->id, 1);
  EXPECT_EQ(c.stats().lifo_picks, 0u);

  // At threshold: newest-first.
  q = {{1, Time::from_seconds(0.1)},
       {2, Time::from_seconds(0.2)},
       {3, Time::from_seconds(0.3)}};
  got = policy::overload::pop_next(&c, q, now, enq, shed);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->id, 3);
  EXPECT_EQ(c.stats().lifo_picks, 1u);
  EXPECT_EQ(shed_ids, 0);  // nothing stale yet
}

TEST(AdaptiveLifo, StaleEntriesAreShedAtDequeue) {
  OverloadPolicy p;
  p.kind = Kind::kAdaptiveLifo;
  p.lifo_threshold = 10;  // stay FIFO; isolate the age gate
  p.lifo_max_sojourn = Duration::millis(500);
  AdmissionController c(p);
  const Time now = Time::from_seconds(2.0);
  std::vector<int> shed_ids;
  auto enq = [](const Entry& e) { return e.enq; };
  auto shed = [&](Entry e) { shed_ids.push_back(e.id); };

  // 1 and 2 have sat for >= 500 ms (dead senders); 3 is fresh.
  std::deque<Entry> q = {{1, Time::from_seconds(0.1)},
                         {2, Time::from_seconds(1.5)},
                         {3, Time::from_seconds(1.8)}};
  auto got = policy::overload::pop_next(&c, q, now, enq, shed);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->id, 3);
  EXPECT_EQ(shed_ids, (std::vector<int>{1, 2}));
  EXPECT_EQ(c.stats().shed_dequeue, 2u);

  // A queue of nothing but stale work drains to empty.
  q = {{4, Time::from_seconds(0.2)}};
  got = policy::overload::pop_next(&c, q, now, enq, shed);
  EXPECT_FALSE(got.has_value());
  EXPECT_TRUE(q.empty());
}

TEST(PopNext, NullControllerIsPlainFifo) {
  const Time now = Time::from_seconds(9.0);
  auto enq = [](const Entry& e) { return e.enq; };
  auto shed = [](Entry) { FAIL() << "nothing may be shed without a controller"; };
  std::deque<Entry> q = {{1, Time::from_seconds(0.0)}, {2, Time::from_seconds(0.1)}};
  auto got = policy::overload::pop_next<std::deque<Entry>>(nullptr, q, now, enq, shed);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->id, 1);
  std::deque<Entry> empty;
  EXPECT_FALSE(
      policy::overload::pop_next<std::deque<Entry>>(nullptr, empty, now, enq, shed)
          .has_value());
}

// --- system level: wiring, shed->retry contract, determinism ---------------

TEST(OverloadSystem, DisabledByDefaultBuildsNoControllerAndNoProbes) {
  auto cfg = core::scenarios::ext_overload_control(core::scenarios::OverloadChoice::kNone);
  cfg.duration = Duration::seconds(2);
  cfg.workload.sessions = 200;
  cfg.faults = fault::FaultPlan{};
  auto sys = core::run_system(cfg);
  EXPECT_EQ(sys->web()->overload(), nullptr);
  EXPECT_EQ(sys->app()->overload(), nullptr);
  EXPECT_FALSE(sys->registry().has_series("apache.ov_shed"));
  EXPECT_FALSE(sys->registry().has_series("tomcat.ov_admitted"));
}

TEST(OverloadSystem, ShedsBecomeRetryableFailuresUpstream) {
  // Tiny queue cap at the web tier at the scenario's WL 8000 (past the
  // paper's saturation point, so >10 requests in system is routine):
  // sheds are certain even without any fault.
  auto cfg = core::scenarios::ext_overload_control(core::scenarios::OverloadChoice::kQueueCap);
  cfg.duration = Duration::seconds(6);
  cfg.faults = fault::FaultPlan{};
  cfg.overload.app = policy::overload::OverloadPolicy{};  // web only
  cfg.overload.web.queue_cap = 10;
  auto sys = core::run_system(cfg);
  const auto* c = sys->web()->overload();
  ASSERT_NE(c, nullptr);
  EXPECT_GT(c->stats().shed_admission, 0u);
  auto s = core::summarize(*sys);
  // Every shed is concluded as a failed attempt by the client governor
  // and routed through retry_or_fail: retries happen, and with only 4
  // attempts against a persistent cap some requests fail outright.
  EXPECT_GT(s.client_retries, 0u);
  EXPECT_GT(s.failed_requests, 0u);
  // Telemetry probes exist and saw the sheds.
  ASSERT_TRUE(sys->registry().has_series("apache.ov_shed"));
  EXPECT_EQ(sys->registry().has_series("mysql.ov_shed"), false);  // db has no policy
}

namespace {
// mysql-completed per tomcat-completed: the mean DB queries actually
// issued per app-tier request (RUBBoS issues several per dynamic
// request, so the healthy ratio is well above 1).
double db_per_app(const core::ExperimentSummary& s) {
  double app = 0.0, db = 0.0;
  for (const auto& t : s.tiers) {
    if (t.server == "tomcat") app = static_cast<double>(t.completed);
    if (t.server == "mysql") db = static_cast<double>(t.completed);
  }
  EXPECT_GT(app, 0.0);
  return db / app;
}
}  // namespace

TEST(OverloadSystem, BrownoutSkipsDownstreamWork) {
  auto cfg = core::scenarios::ext_overload_control(core::scenarios::OverloadChoice::kBrownout);
  cfg.duration = Duration::seconds(6);
  cfg.faults = fault::FaultPlan{};
  cfg.overload.web = policy::overload::OverloadPolicy{};  // app only
  cfg.overload.app.degrade_above = 5;
  cfg.overload.app.brownout_cap = 0;
  auto sys = core::run_system(cfg);
  const auto* c = sys->app()->overload();
  ASSERT_NE(c, nullptr);
  ASSERT_GT(c->stats().degraded, 0u);
  const double browned = db_per_app(core::summarize(*sys));

  // Same run with no overload control: every dynamic request runs its
  // full DB-query fan-out, so it issues strictly more DB work per
  // app-tier request than the brownout run, where degraded requests
  // skip the app->db hop entirely.
  cfg.overload.app = policy::overload::OverloadPolicy{};
  auto base = core::run_system(cfg);
  const double healthy = db_per_app(core::summarize(*base));
  EXPECT_LT(browned, healthy);
}

TEST(OverloadSystem, ControlledRunsReplayBitIdentically) {
  auto cfg = core::scenarios::ext_overload_control(core::scenarios::OverloadChoice::kCoDel);
  cfg.duration = Duration::seconds(16);
  cfg.workload.sessions = 2000;
  auto a = core::run_system(cfg);
  auto b = core::run_system(cfg);
  EXPECT_EQ(core::summarize(*a).to_string(), core::summarize(*b).to_string());
}

// --- the metastability verdict engine --------------------------------------

TEST(Metastability, QuietRunIsJudgedRecoveredImmediately) {
  // No fault at all: every "post-fault" window looks exactly like the
  // baseline, so the verdict must be kRecovered with a near-zero TTR.
  auto cfg = core::scenarios::ext_overload_control(core::scenarios::OverloadChoice::kNone);
  cfg.workload.sessions = 500;
  cfg.workload.client_policy = policy::TailPolicy{};
  cfg.faults = fault::FaultPlan{};
  cfg.duration = Duration::seconds(14);
  auto sys = core::run_system(cfg);
  core::RecoveryOptions opt;
  opt.fault_start = Time::from_seconds(6.0);
  opt.fault_clear = Time::from_seconds(7.0);
  opt.horizon = Duration::seconds(6);
  auto v = core::classify_recovery({"apache", "tomcat", "mysql"}, sys->sampler(), opt);
  EXPECT_EQ(v.regime, core::Regime::kRecovered);
  ASSERT_EQ(v.tiers.size(), 3u);
  for (const auto& t : v.tiers) {
    EXPECT_TRUE(t.recovered) << t.name;
    EXPECT_GT(t.pre_goodput, 0.0) << t.name;
  }
  EXPECT_LE(v.time_to_recovery, Duration::seconds(1));
  // Healthy closed-loop: offered tracks completed.
  EXPECT_LT(v.storm_amplification, 1.2);
}

}  // namespace
}  // namespace ntier
