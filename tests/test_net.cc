#include <gtest/gtest.h>

#include <vector>

#include "net/link.h"
#include "net/message.h"
#include "net/rto_policy.h"
#include "net/tcp_queue.h"
#include "net/transport.h"
#include "sim/simulation.h"

namespace ntier::net {
namespace {

using sim::Duration;
using sim::Simulation;
using sim::Time;

// --- RtoPolicy -----------------------------------------------------------

TEST(RtoPolicy, FixedSchedule) {
  const auto p = RtoPolicy::fixed3s();
  EXPECT_EQ(p.rto(0), Duration::seconds(3));
  EXPECT_EQ(p.rto(1), Duration::seconds(3));
  EXPECT_EQ(p.rto(5), Duration::seconds(3));
}

TEST(RtoPolicy, Rhel6ExponentialSchedule) {
  const auto p = RtoPolicy::rhel6();
  EXPECT_EQ(p.rto(0), Duration::seconds(3));
  EXPECT_EQ(p.rto(1), Duration::seconds(6));
  EXPECT_EQ(p.rto(2), Duration::seconds(12));
}

TEST(RtoPolicy, NegativeRetryClamps) {
  EXPECT_EQ(RtoPolicy::rhel6().rto(-3), Duration::seconds(3));
}

TEST(RtoPolicy, CustomMultiplier) {
  RtoPolicy p;
  p.initial = Duration::seconds(1);
  p.multiplier = 3.0;
  EXPECT_EQ(p.rto(2), Duration::seconds(9));
}

// --- MessageIdGen --------------------------------------------------------

TEST(MessageIdGen, Monotonic) {
  MessageIdGen gen;
  const auto a = gen.next();
  const auto b = gen.next();
  EXPECT_LT(a, b);
}

// --- Link ----------------------------------------------------------------

TEST(Link, FixedLatency) {
  Link l{Duration::micros(250)};
  EXPECT_EQ(l.sample(), Duration::micros(250));
  EXPECT_EQ(l.base_latency(), Duration::micros(250));
}

TEST(Link, JitterWithinBounds) {
  sim::Rng rng(1);
  Link l{Duration::micros(100), Duration::micros(50), rng};
  for (int i = 0; i < 1000; ++i) {
    const auto s = l.sample();
    EXPECT_GE(s, Duration::micros(100));
    EXPECT_LE(s, Duration::micros(150));  // rounding can land on the edge
  }
}

// --- TcpQueue ------------------------------------------------------------

TEST(TcpQueue, AdmitsUpToCapacity) {
  TcpQueue q(2);
  EXPECT_TRUE(q.try_push(Time::origin()));
  EXPECT_TRUE(q.try_push(Time::origin()));
  EXPECT_TRUE(q.full());
  EXPECT_FALSE(q.try_push(Time::origin()));
  EXPECT_EQ(q.depth(), 2u);
  EXPECT_EQ(q.drops(), 1u);
}

TEST(TcpQueue, PopMakesRoom) {
  TcpQueue q(1);
  EXPECT_TRUE(q.try_push(Time::origin()));
  q.pop();
  EXPECT_TRUE(q.try_push(Time::origin()));
  EXPECT_EQ(q.drops(), 0u);
}

TEST(TcpQueue, DropTimesRecorded) {
  TcpQueue q(0);
  q.try_push(Time::from_seconds(1.5));
  q.try_push(Time::from_seconds(2.5));
  ASSERT_EQ(q.drop_times().size(), 2u);
  EXPECT_EQ(q.drop_times()[0], Time::from_seconds(1.5));
  EXPECT_EQ(q.drop_times()[1], Time::from_seconds(2.5));
}

TEST(TcpQueue, PopOnEmptyIsSafe) {
  TcpQueue q(1);
  q.pop();
  EXPECT_EQ(q.depth(), 0u);
}

// --- Transport -----------------------------------------------------------

struct Receiver {
  int accept_after_attempts = 0;  // refuse this many attempts first
  int attempts = 0;
  bool offer() {
    ++attempts;
    return attempts > accept_after_attempts;
  }
};

TEST(Transport, DeliversAfterLinkLatency) {
  Simulation sim;
  Transport tx(sim, RtoPolicy::fixed3s(), Link{Duration::micros(500)});
  Receiver r;
  double delivered_at = -1;
  TxOutcome out;
  tx.send([&] {
    delivered_at = sim.now().to_seconds();
    return r.offer();
  },
          [&](const TxOutcome& o) { out = o; });
  sim.run_all();
  EXPECT_NEAR(delivered_at, 0.0005, 1e-9);
  EXPECT_TRUE(out.delivered);
  EXPECT_EQ(out.attempts, 1);
  EXPECT_EQ(out.drops, 0);
  EXPECT_EQ(out.retrans_delay, Duration::zero());
  EXPECT_EQ(tx.stats().delivered, 1u);
}

TEST(Transport, RetransmitsAfterRto) {
  Simulation sim;
  Transport tx(sim, RtoPolicy::fixed3s(), Link{Duration::micros(0)});
  Receiver r{1};  // first attempt refused
  double delivered_at = -1;
  TxOutcome out;
  tx.send([&] {
    const bool ok = r.offer();
    if (ok) delivered_at = sim.now().to_seconds();
    return ok;
  },
          [&](const TxOutcome& o) { out = o; });
  sim.run_all();
  EXPECT_NEAR(delivered_at, 3.0, 1e-6);
  EXPECT_TRUE(out.delivered);
  EXPECT_EQ(out.attempts, 2);
  EXPECT_EQ(out.drops, 1);
  EXPECT_EQ(out.retrans_delay, Duration::seconds(3));
  EXPECT_EQ(tx.stats().drops, 1u);
  EXPECT_EQ(tx.stats().retransmits, 1u);
}

TEST(Transport, ExponentialBackoffTiming) {
  Simulation sim;
  Transport tx(sim, RtoPolicy::rhel6(), Link{Duration::micros(0)});
  Receiver r{2};  // two refusals -> delivered at 3 + 6 = 9 s
  double delivered_at = -1;
  tx.send([&] {
    const bool ok = r.offer();
    if (ok) delivered_at = sim.now().to_seconds();
    return ok;
  });
  sim.run_all();
  EXPECT_NEAR(delivered_at, 9.0, 1e-6);
}

TEST(Transport, FixedBackoffTiming) {
  Simulation sim;
  Transport tx(sim, RtoPolicy::fixed3s(), Link{Duration::micros(0)});
  Receiver r{3};  // three refusals -> delivered at 9 s
  double delivered_at = -1;
  tx.send([&] {
    const bool ok = r.offer();
    if (ok) delivered_at = sim.now().to_seconds();
    return ok;
  });
  sim.run_all();
  EXPECT_NEAR(delivered_at, 9.0, 1e-6);
}

TEST(Transport, GivesUpAfterMaxRetries) {
  Simulation sim;
  RtoPolicy p = RtoPolicy::fixed3s();
  p.max_retries = 2;
  Transport tx(sim, p, Link{Duration::micros(0)});
  Receiver r{100};  // never accepts
  TxOutcome out;
  tx.send([&] { return r.offer(); }, [&](const TxOutcome& o) { out = o; });
  sim.run_all();
  EXPECT_FALSE(out.delivered);
  EXPECT_EQ(r.attempts, 3);  // initial + 2 retries
  EXPECT_EQ(tx.stats().failed, 1u);
  EXPECT_EQ(tx.stats().delivered, 0u);
}

TEST(Transport, StatsAcrossManySends) {
  Simulation sim;
  Transport tx(sim, RtoPolicy::fixed3s(), Link{Duration::micros(10)});
  int ok = 0;
  for (int i = 0; i < 10; ++i)
    tx.send([] { return true; }, [&](const TxOutcome& o) { ok += o.delivered; });
  sim.run_all();
  EXPECT_EQ(ok, 10);
  EXPECT_EQ(tx.stats().sent, 10u);
  EXPECT_EQ(tx.stats().delivered, 10u);
  EXPECT_EQ(tx.stats().drops, 0u);
}

TEST(Transport, ResultOptional) {
  Simulation sim;
  Transport tx(sim, RtoPolicy::fixed3s(), Link{});
  bool delivered = false;
  tx.send([&] {
    delivered = true;
    return true;
  });
  sim.run_all();
  EXPECT_TRUE(delivered);
}

}  // namespace
}  // namespace ntier::net
