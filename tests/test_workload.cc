#include <gtest/gtest.h>

#include "helpers.h"
#include "metrics/summary.h"
#include "server/sync_server.h"
#include "workload/burst_model.h"
#include "workload/client.h"
#include "workload/request_mix.h"
#include "workload/sysbursty.h"

namespace ntier::workload {
namespace {

using sim::Duration;
using sim::Simulation;
using sim::Time;

// --- BurstClock ----------------------------------------------------------

TEST(BurstClock, IndexOneNeverBursts) {
  Simulation sim;
  sim::Rng rng(1);
  BurstClock clock(sim, rng, BurstClock::Config{});
  sim.run_until(Time::from_seconds(100));
  EXPECT_FALSE(clock.bursting());
  EXPECT_TRUE(clock.burst_starts().empty());
  EXPECT_DOUBLE_EQ(clock.think_scale(), 1.0);
}

TEST(BurstClock, TogglesAndRecordsStarts) {
  Simulation sim;
  sim::Rng rng(2);
  BurstClock::Config cfg;
  cfg.burst_index = 100.0;
  cfg.burst_dwell = Duration::millis(500);
  cfg.normal_dwell = Duration::seconds(5);
  BurstClock clock(sim, rng, cfg);
  sim.run_until(Time::from_seconds(120));
  EXPECT_GT(clock.burst_starts().size(), 5u);
}

TEST(BurstClock, ThinkScaleDuringBurst) {
  Simulation sim;
  sim::Rng rng(3);
  BurstClock::Config cfg;
  cfg.burst_index = 50.0;
  cfg.burst_dwell = Duration::seconds(1000);  // stays in burst once entered
  cfg.normal_dwell = Duration::millis(1);
  BurstClock clock(sim, rng, cfg);
  sim.run_until(Time::from_seconds(1));
  EXPECT_TRUE(clock.bursting());
  EXPECT_DOUBLE_EQ(clock.think_scale(), 1.0 / 50.0);
}

TEST(DrawThink, HonorsClockScale) {
  Simulation sim;
  sim::Rng rng(4);
  BurstClock::Config cfg;
  cfg.burst_index = 100.0;
  cfg.burst_dwell = Duration::seconds(1000);
  cfg.normal_dwell = Duration::millis(1);
  BurstClock clock(sim, rng, cfg);
  sim.run_until(Time::from_seconds(1));
  ASSERT_TRUE(clock.bursting());
  double acc = 0.0;
  const int n = 5000;
  for (int i = 0; i < n; ++i)
    acc += draw_think(rng, Duration::seconds(7), &clock).to_seconds();
  EXPECT_NEAR(acc / n, 0.07, 0.01);
}

TEST(DrawThink, NullClockIsPlainExponential) {
  sim::Rng rng(5);
  double acc = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    acc += draw_think(rng, Duration::seconds(7), nullptr).to_seconds();
  EXPECT_NEAR(acc / n, 7.0, 0.15);
}

TEST(BurstClock, RaisesArrivalDispersion) {
  // Arrivals generated under a bursty clock must have higher SCV than
  // exponential arrivals at the same mean rate.
  Simulation sim;
  sim::Rng rng(6);
  BurstClock::Config cfg;
  cfg.burst_index = 100.0;
  cfg.burst_dwell = Duration::millis(500);
  cfg.normal_dwell = Duration::seconds(5);
  BurstClock clock(sim, rng, cfg);
  metrics::DispersionIndex bursty;
  std::function<void()> arrive = [&] {
    bursty.add_arrival(sim.now());
    sim.after(draw_think(rng, Duration::millis(100), &clock), arrive);
  };
  sim.after(Duration::millis(1), arrive);
  sim.run_until(Time::from_seconds(300));
  EXPECT_GT(bursty.scv(), 3.0);
}

// --- InterferenceLoad ----------------------------------------------------

TEST(InterferenceLoad, BatchScheduleAndMarks) {
  Simulation sim;
  cpu::HostCpu host(sim, 1.0);
  auto* vm = host.add_vm("bursty");
  InterferenceLoad::BatchConfig cfg;
  cfg.first_at = Time::from_seconds(2);
  cfg.period = Duration::seconds(5);
  cfg.batch_size = 10;
  cfg.demand_per_job = Duration::micros(100);
  InterferenceLoad load(sim, vm, cfg);
  sim.run_until(Time::from_seconds(13));
  ASSERT_EQ(load.burst_marks().size(), 3u);  // 2, 7, 12
  EXPECT_EQ(load.burst_marks()[0], Time::from_seconds(2));
  EXPECT_EQ(load.burst_marks()[2], Time::from_seconds(12));
  EXPECT_EQ(load.jobs_submitted(), 30u);
  EXPECT_EQ(load.jobs_completed(), 30u);
}

TEST(InterferenceLoad, BatchSaturatesVm) {
  Simulation sim;
  cpu::HostCpu host(sim, 1.0);
  auto* vm = host.add_vm("bursty");
  InterferenceLoad::BatchConfig cfg;
  cfg.first_at = Time::from_seconds(1);
  cfg.period = Duration::seconds(100);
  cfg.batch_size = 400;
  cfg.demand_per_job = Duration::micros(1500);  // 0.6 s of work
  InterferenceLoad load(sim, vm, cfg);
  sim.run_until(Time::from_seconds(2));
  EXPECT_NEAR(vm->busy_core_seconds(), 0.6, 1e-3);
}

TEST(InterferenceLoad, MmppClosedLoopBaseRate) {
  Simulation sim;
  cpu::HostCpu host(sim, 10.0);
  auto* vm = host.add_vm("bursty", 10);
  InterferenceLoad::MmppConfig cfg;
  cfg.clients = 350;
  cfg.mean_think = Duration::seconds(7);
  cfg.demand_per_job = Duration::micros(10);
  cfg.burst.burst_index = 1.0;  // no bursts: plain closed loop
  InterferenceLoad load(sim, vm, sim::Rng(7), cfg);
  sim.run_until(Time::from_seconds(100));
  EXPECT_NEAR(load.jobs_submitted() / 100.0, 50.0, 5.0);  // N/Z = 350/7
}

TEST(InterferenceLoad, MmppBacklogBoundedByClients) {
  // Closed loop: even while the VM is saturated, at most `clients` jobs
  // are in flight — the property that bounds the millibottleneck length.
  Simulation sim;
  cpu::HostCpu host(sim, 1.0);
  auto* vm = host.add_vm("bursty");
  InterferenceLoad::MmppConfig cfg;
  cfg.clients = 50;
  cfg.mean_think = Duration::millis(1);  // hammer the core
  cfg.demand_per_job = Duration::millis(10);
  cfg.burst.burst_index = 1.0;
  InterferenceLoad load(sim, vm, sim::Rng(8), cfg);
  sim.run_until(Time::from_seconds(2));
  EXPECT_LE(vm->active_jobs(), 50u);
  EXPECT_GE(vm->active_jobs(), 40u);
}

// --- ClientPool ----------------------------------------------------------

struct EchoServerFixture {
  Simulation sim;
  cpu::HostCpu host{sim, 4.0};
  cpu::VmCpu* vm = host.add_vm("web", 4);
  server::AppProfile profile = test::one_class_profile();
  std::unique_ptr<server::SyncServer> srv = std::make_unique<server::SyncServer>(
      sim, "web", vm, &profile,
      [](const server::RequestClassProfile&) {
        return test::cpu_only(Duration::micros(100));
      },
      server::SyncConfig{.threads_per_process = 1000, .backlog = 1000});
};

TEST(ClientPool, ClosedLoopLawThroughput) {
  EchoServerFixture f;
  ClientConfig cc;
  cc.sessions = 700;
  cc.mean_think = Duration::seconds(7);
  ClientPool clients(f.sim, sim::Rng(8), &f.profile, f.srv.get(), cc);
  clients.start();
  f.sim.run_until(Time::from_seconds(120));
  // X = N/(R+Z) ~ 700/7.0 = 100 req/s.
  const double rate = clients.completed() / 120.0;
  EXPECT_NEAR(rate, 100.0, 6.0);
}

TEST(ClientPool, ConservationInvariant) {
  EchoServerFixture f;
  ClientConfig cc;
  cc.sessions = 100;
  cc.mean_think = Duration::millis(100);
  ClientPool clients(f.sim, sim::Rng(9), &f.profile, f.srv.get(), cc);
  clients.start();
  f.sim.run_until(Time::from_seconds(10));
  EXPECT_EQ(clients.issued(), clients.completed() + clients.in_flight());
  EXPECT_LE(clients.in_flight(), cc.sessions);
  EXPECT_EQ(clients.failed(), 0u);
}

TEST(ClientPool, OnCompleteSeesLatency) {
  EchoServerFixture f;
  ClientConfig cc;
  cc.sessions = 10;
  cc.mean_think = Duration::millis(50);
  ClientPool clients(f.sim, sim::Rng(10), &f.profile, f.srv.get(), cc);
  int n = 0;
  clients.on_complete([&](const server::RequestPtr& r) {
    ++n;
    EXPECT_GT(r->latency(), Duration::zero());
    EXPECT_LT(r->latency(), Duration::seconds(1));
  });
  clients.start();
  f.sim.run_until(Time::from_seconds(5));
  EXPECT_GT(n, 100);
}

TEST(ClientPool, MeasureFromSkipsWarmup) {
  EchoServerFixture f;
  ClientConfig cc;
  cc.sessions = 10;
  cc.mean_think = Duration::millis(50);
  cc.measure_from = Time::from_seconds(100);  // beyond the run
  ClientPool clients(f.sim, sim::Rng(11), &f.profile, f.srv.get(), cc);
  int n = 0;
  clients.on_complete([&](const server::RequestPtr&) { ++n; });
  clients.start();
  f.sim.run_until(Time::from_seconds(5));
  EXPECT_EQ(n, 0);
  EXPECT_GT(clients.completed(), 0u);
}

TEST(ClientPool, TracingStampsHops) {
  EchoServerFixture f;
  ClientConfig cc;
  cc.sessions = 1;
  cc.mean_think = Duration::millis(10);
  cc.trace_requests = true;
  ClientPool clients(f.sim, sim::Rng(12), &f.profile, f.srv.get(), cc);
  server::RequestPtr seen;
  clients.on_complete([&](const server::RequestPtr& r) { if (!seen) seen = r; });
  clients.start();
  f.sim.run_until(Time::from_seconds(2));
  ASSERT_TRUE(seen);
  ASSERT_GE(seen->trace.size(), 4u);
  EXPECT_EQ(seen->trace.front().where, "client:send");
  EXPECT_EQ(seen->trace.back().where, "client:recv");
}

// --- request_mix predictions --------------------------------------------

TEST(RequestMix, PredictMatchesPaperOperatingPoints) {
  const auto profile = server::AppProfile::rubbos();
  const auto wl4000 = predict(profile, 4000, Duration::seconds(7));
  const auto wl7000 = predict(profile, 7000, Duration::seconds(7));
  const auto wl8000 = predict(profile, 8000, Duration::seconds(7));
  EXPECT_NEAR(wl4000.throughput_rps, 572.0, 15.0);   // paper: 572
  EXPECT_NEAR(wl7000.throughput_rps, 990.0, 25.0);   // paper: 990
  EXPECT_NEAR(wl8000.throughput_rps, 1103.0, 40.0);  // paper: 1103
  // The app tier is the "highest average CPU" tier of Fig 1.
  EXPECT_NEAR(wl4000.app_util, 0.43, 0.06);  // paper: 43%
  EXPECT_NEAR(wl7000.app_util, 0.75, 0.08);  // paper: 75%
  EXPECT_NEAR(wl8000.app_util, 0.85, 0.09);  // paper: 85%
  EXPECT_GT(wl7000.app_util, wl7000.db_util);
  EXPECT_GT(wl7000.db_util, wl7000.web_util);
}

TEST(RequestMix, MeanTierDemands) {
  const auto profile = server::AppProfile::rubbos();
  EXPECT_NEAR(mean_web_cpu(profile).to_seconds(), 0.15 * 50e-6 + 0.85 * 100e-6, 2e-6);
  EXPECT_NEAR(mean_db_cpu(profile).to_seconds(), 0.55 * 350e-6 + 0.30 * 600e-6, 2e-6);
}

}  // namespace
}  // namespace ntier::workload
