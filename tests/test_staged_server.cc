#include "server/staged_server.h"

#include <gtest/gtest.h>

#include "helpers.h"
#include "net/rto_policy.h"
#include "server/sync_server.h"

namespace ntier::server {
namespace {

using sim::Duration;
using sim::Simulation;
using sim::Time;
using test::ReplySink;

struct Fixture {
  Simulation sim;
  cpu::HostCpu host{sim, 1.0};
  cpu::VmCpu* vm = host.add_vm("srv");
  AppProfile profile = test::one_class_profile();
  ReplySink sink{sim};

  std::unique_ptr<StagedServer> make(StagedConfig cfg, Program prog) {
    return std::make_unique<StagedServer>(
        sim, "seda", vm, &profile,
        [prog](const RequestClassProfile&) { return prog; }, cfg);
  }
  std::unique_ptr<SyncServer> make_sync(SyncConfig cfg, Program prog) {
    return std::make_unique<SyncServer>(
        sim, "down", vm, &profile,
        [prog](const RequestClassProfile&) { return prog; }, cfg);
  }
};

TEST(StagedServer, ProcessesAndReplies) {
  Fixture f;
  auto srv = f.make(StagedConfig{}, test::cpu_only(Duration::millis(10)));
  EXPECT_TRUE(srv->offer(f.sink.job(1)));
  f.sim.run_all();
  ASSERT_EQ(f.sink.replies.size(), 1u);
  EXPECT_NEAR(f.sink.replies[0].second.to_seconds(), 0.010, 1e-4);
}

TEST(StagedServer, IngressQueueBoundsAdmission) {
  Fixture f;
  StagedConfig cfg;
  cfg.ingress.queue_cap = 2;
  cfg.ingress.threads = 1;
  auto srv = f.make(cfg, test::cpu_only(Duration::millis(50)));
  EXPECT_TRUE(srv->offer(f.sink.job(1)));   // taken by the stage thread
  EXPECT_TRUE(srv->offer(f.sink.job(2)));   // queued
  EXPECT_TRUE(srv->offer(f.sink.job(3)));   // queued
  EXPECT_FALSE(srv->offer(f.sink.job(4)));  // queue full -> drop
  EXPECT_EQ(srv->stats().dropped, 1u);
  EXPECT_EQ(srv->max_sys_q_depth(), 3u);  // cap + threads
}

TEST(StagedServer, StageThreadsBoundConcurrency) {
  Fixture f;
  StagedConfig cfg;
  cfg.ingress.threads = 2;
  auto srv = f.make(cfg, test::cpu_only(Duration::millis(10)));
  for (int i = 0; i < 5; ++i) srv->offer(f.sink.job(i));
  EXPECT_EQ(srv->busy_workers(), 2u);
  f.sim.run_all();
  EXPECT_EQ(f.sink.replies.size(), 5u);
}

TEST(StagedServer, DownstreamDoesNotHoldStageThread) {
  Fixture f;
  StagedConfig cfg;
  cfg.ingress.threads = 1;
  SyncConfig down_cfg;
  down_cfg.threads_per_process = 8;
  auto down = f.make_sync(down_cfg, test::cpu_only(Duration::millis(50)));
  auto up = f.make(cfg, test::cpu_down_cpu(Duration::micros(10), Duration::micros(10)));
  up->connect_downstream(down.get(), net::RtoPolicy::fixed3s(), net::Link{});
  up->offer(f.sink.job(1));
  up->offer(f.sink.job(2));
  f.sim.run_until(Time::from_seconds(0.005));
  // Both made it downstream although the stage has a single thread.
  EXPECT_EQ(down->queued_requests(), 2u);
  f.sim.run_all();
  EXPECT_EQ(f.sink.replies.size(), 2u);
}

TEST(StagedServer, ContinuationWorkIsNeverShed) {
  Fixture f;
  StagedConfig cfg;
  cfg.ingress.queue_cap = 100;
  cfg.continuation.threads = 1;
  SyncConfig down_cfg;
  down_cfg.threads_per_process = 64;
  auto down = f.make_sync(down_cfg, test::cpu_only(Duration::millis(1)));
  auto up = f.make(cfg, test::cpu_down_cpu(Duration::micros(10), Duration::millis(2)));
  up->connect_downstream(down.get(), net::RtoPolicy::fixed3s(), net::Link{});
  for (int i = 0; i < 50; ++i) up->offer(f.sink.job(i));
  f.sim.run_all();
  EXPECT_EQ(f.sink.replies.size(), 50u);
  EXPECT_EQ(up->stats().dropped, 0u);
  EXPECT_EQ(up->stats().completed, 50u);
}

TEST(StagedServer, SitsBetweenSyncAndAsyncUnderFreeze) {
  // During a 300 ms freeze at 2000 arrivals/s, ~600 requests arrive:
  // sync (278) drops, staged (1000+16) absorbs, matching its cap.
  Fixture f;
  StagedConfig cfg;
  cfg.ingress.queue_cap = 1000;
  auto srv = f.make(cfg, test::cpu_only(Duration::micros(100)));
  f.vm->freeze_for(Duration::millis(300));
  for (int i = 0; i < 600; ++i) {
    f.sim.after(Duration::micros(500 * i),
                [&f, &srv, i] { srv->offer(f.sink.job(i)); });
  }
  f.sim.run_all();
  EXPECT_EQ(srv->stats().dropped, 0u);
  EXPECT_EQ(f.sink.replies.size(), 600u);
}

TEST(StagedServer, StatsAndConservation) {
  Fixture f;
  auto srv = f.make(StagedConfig{}, test::cpu_only(Duration::millis(1)));
  for (int i = 0; i < 20; ++i) srv->offer(f.sink.job(i));
  f.sim.run_all();
  EXPECT_EQ(srv->stats().accepted, 20u);
  EXPECT_EQ(srv->stats().completed, 20u);
  EXPECT_EQ(srv->queued_requests(), 0u);
}

}  // namespace
}  // namespace ntier::server
