#include "server/connection_pool.h"

#include <gtest/gtest.h>

#include <vector>

namespace ntier::server {
namespace {

TEST(ConnectionPool, ImmediateGrantWhenFree) {
  ConnectionPool pool(2);
  bool granted = false;
  pool.acquire([&] { granted = true; });
  EXPECT_TRUE(granted);
  EXPECT_EQ(pool.in_use(), 1u);
  EXPECT_EQ(pool.waiting(), 0u);
}

TEST(ConnectionPool, QueuesWhenExhausted) {
  ConnectionPool pool(1);
  pool.acquire([] {});
  bool granted = false;
  pool.acquire([&] { granted = true; });
  EXPECT_FALSE(granted);
  EXPECT_EQ(pool.waiting(), 1u);
}

TEST(ConnectionPool, ReleaseHandsToOldestWaiter) {
  ConnectionPool pool(1);
  pool.acquire([] {});
  std::vector<int> order;
  pool.acquire([&] { order.push_back(1); });
  pool.acquire([&] { order.push_back(2); });
  pool.release();
  pool.release();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(pool.in_use(), 1u);  // one grant still holds it
}

TEST(ConnectionPool, ReleaseWithoutWaitersFreesSlot) {
  ConnectionPool pool(1);
  pool.acquire([] {});
  pool.release();
  EXPECT_EQ(pool.in_use(), 0u);
  bool granted = false;
  pool.acquire([&] { granted = true; });
  EXPECT_TRUE(granted);
}

TEST(ConnectionPool, InUseNeverExceedsSize) {
  ConnectionPool pool(3);
  for (int i = 0; i < 10; ++i) pool.acquire([] {});
  EXPECT_EQ(pool.in_use(), 3u);
  EXPECT_EQ(pool.waiting(), 7u);
}

TEST(ConnectionPool, GrantCounting) {
  ConnectionPool pool(1);
  pool.acquire([] {});
  pool.acquire([] {});
  EXPECT_EQ(pool.total_grants(), 1u);
  pool.release();
  EXPECT_EQ(pool.total_grants(), 2u);
}

}  // namespace
}  // namespace ntier::server
