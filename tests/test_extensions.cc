// Integration tests of the extension studies: GC-pause and DVFS
// millibottleneck causes, the mixed-stack iff-claim, and the Fig 4
// static-request observation.
#include <gtest/gtest.h>

#include "core/chain.h"
#include "core/ctqo_analyzer.h"
#include "core/experiment.h"
#include "core/scenarios.h"

namespace ntier::core {
namespace {

using sim::Duration;
using sim::Time;

TEST(Extensions, GcPausesCauseCtqoInSyncStack) {
  auto sys = run_system(scenarios::ext_gc_pause(Architecture::kSync));
  EXPECT_GT(sys->latency().vlrt_count(), 50u);
  ASSERT_NE(sys->gc_injector(), nullptr);
  EXPECT_GE(sys->gc_injector()->pause_times().size(), 3u);
  const auto report = analyze_ctqo(*sys);
  ASSERT_GE(report.episodes.size(), 1u);
  // Every episode traces back to the app tier's pauses.
  for (const auto& ep : report.episodes)
    EXPECT_EQ(ep.bottleneck_tier, index(Tier::kApp));
}

TEST(Extensions, GcPausesHarmlessInAsyncStack) {
  auto sys = run_system(scenarios::ext_gc_pause(Architecture::kNx3));
  EXPECT_EQ(sys->latency().vlrt_count(), 0u);
  EXPECT_EQ(summarize(*sys).total_drops, 0u);
  // The pauses still happened.
  EXPECT_GE(sys->gc_injector()->pause_times().size(), 3u);
}

TEST(Extensions, DvfsLagCausesCtqoInSyncStack) {
  auto sys = run_system(scenarios::ext_dvfs(Architecture::kSync));
  EXPECT_GT(summarize(*sys).total_drops, 5u);
  ASSERT_NE(sys->dvfs(), nullptr);
  EXPECT_GT(sys->dvfs()->throttled_seconds(), 10.0);
}

TEST(Extensions, DvfsLagHarmlessInAsyncStack) {
  auto sys = run_system(scenarios::ext_dvfs(Architecture::kNx3));
  EXPECT_EQ(summarize(*sys).total_drops, 0u);
  EXPECT_EQ(sys->latency().vlrt_count(), 0u);
}

TEST(Extensions, StaticRequestsAlsoSufferVlrt) {
  // Fig 4's observation: by t3, even static requests — served entirely
  // in Apache — queue behind the blocked dynamic ones and get dropped.
  auto cfg = scenarios::fig3_consolidation_sync();
  auto sys = run_system(cfg);
  const auto static_idx = sys->profile().index_of("Static");
  const auto& stats = sys->latency().class_stats(static_idx);
  EXPECT_GT(stats.completed, 1000u);
  EXPECT_GT(stats.vlrt, 10u);
  EXPECT_GT(stats.dropped, 10u);
}

TEST(Extensions, PerClassStatsSumToTotals) {
  auto cfg = scenarios::fig3_consolidation_sync();
  auto sys = run_system(cfg);
  std::uint64_t completed = 0, vlrt = 0;
  for (std::size_t i = 0; i < sys->profile().classes.size(); ++i) {
    completed += sys->latency().class_stats(i).completed;
    vlrt += sys->latency().class_stats(i).vlrt;
  }
  EXPECT_EQ(completed, sys->latency().completed());
  EXPECT_EQ(vlrt, sys->latency().vlrt_count());
}

// The iff-claim over all 8 sync/async combinations (§I): only the
// all-async combination is drop-free under an app-tier millibottleneck.
class StackCombo : public ::testing::TestWithParam<int> {};

TEST_P(StackCombo, CtqoFreeIffAllAsync) {
  const int mask = GetParam();
  const bool web = (mask & 4) != 0;
  const bool app = (mask & 2) != 0;
  const bool db = (mask & 1) != 0;
  ChainConfig cfg;
  auto tier = [](std::string name, bool async, std::size_t threads, auto fn) {
    ChainTierSpec t;
    t.name = std::move(name);
    t.async = async;
    t.sync.threads_per_process = threads;
    t.sync.max_processes = 1;
    t.program_fn = fn;
    return t;
  };
  cfg.tiers.push_back(
      tier("web", web, 150, relay_fn(Duration::micros(60), Duration::micros(40))));
  cfg.tiers.push_back(
      tier("app", app, 150, relay_fn(Duration::micros(150), Duration::micros(600))));
  auto dbt = tier("db", db, 100, leaf_fn(Duration::micros(400)));
  dbt.async_cfg.max_active = 8;
  dbt.async_cfg.lite_q_depth = 2000;
  cfg.tiers.push_back(std::move(dbt));
  cfg.workload.sessions = 7000;
  cfg.duration = Duration::seconds(25);
  cfg.freeze_tier = 1;
  cfg.freeze.first = Time::from_seconds(8);
  cfg.freeze.period = Duration::seconds(12);
  cfg.freeze.pause = Duration::millis(700);
  ChainSystem sys(cfg);
  sys.run();
  if (web && app && db) {
    EXPECT_EQ(sys.total_drops(), 0u);
    EXPECT_EQ(sys.latency().vlrt_count(), 0u);
  } else {
    EXPECT_GT(sys.total_drops(), 0u);
    // Drops sit at the first tier below an unbounded source.
    const int expect_tier = !web ? 0 : (!app ? 1 : 2);
    EXPECT_GT(sys.tier(expect_tier)->stats().dropped, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllCombos, StackCombo, ::testing::Range(0, 8),
                         [](const auto& info) {
                           const int m = info.param;
                           std::string s;
                           s += (m & 4) ? 'A' : 'S';
                           s += (m & 2) ? 'A' : 'S';
                           s += (m & 1) ? 'A' : 'S';
                           return s;
                         });

}  // namespace
}  // namespace ntier::core
