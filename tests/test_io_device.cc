#include "cpu/io_device.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulation.h"

namespace ntier::cpu {
namespace {

using sim::Duration;
using sim::Simulation;
using sim::Time;

TEST(IoDevice, SingleOpServiceTime) {
  Simulation sim;
  IoDevice dev(sim, "d");
  double done = -1;
  dev.submit_service(Duration::millis(10), [&] { done = sim.now().to_seconds(); });
  sim.run_all();
  EXPECT_NEAR(done, 0.010, 1e-6);
}

TEST(IoDevice, FifoOrderAndQueueing) {
  Simulation sim;
  IoDevice dev(sim, "d");
  std::vector<int> order;
  std::vector<double> when;
  for (int i = 0; i < 3; ++i)
    dev.submit_service(Duration::millis(10), [&, i] {
      order.push_back(i);
      when.push_back(sim.now().to_seconds());
    });
  EXPECT_EQ(dev.queue_depth(), 3u);
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_NEAR(when[0], 0.010, 1e-6);
  EXPECT_NEAR(when[1], 0.020, 1e-6);
  EXPECT_NEAR(when[2], 0.030, 1e-6);
  EXPECT_EQ(dev.queue_depth(), 0u);
  EXPECT_EQ(dev.ops_completed(), 3u);
}

TEST(IoDevice, BytesToServiceTime) {
  Simulation sim;
  IoDevice::Config cfg;
  cfg.bytes_per_second = 1024 * 1024;  // 1 MiB/s
  cfg.per_op_latency = Duration::zero();
  IoDevice dev(sim, "d", cfg);
  double done = -1;
  dev.submit(512 * 1024, [&] { done = sim.now().to_seconds(); });
  sim.run_all();
  EXPECT_NEAR(done, 0.5, 1e-6);
  EXPECT_EQ(dev.bytes_written(), 512u * 1024);
}

TEST(IoDevice, PerOpLatencyAdds) {
  Simulation sim;
  IoDevice::Config cfg;
  cfg.bytes_per_second = 1024 * 1024;
  cfg.per_op_latency = Duration::millis(5);
  IoDevice dev(sim, "d", cfg);
  double done = -1;
  dev.submit(0, [&] { done = sim.now().to_seconds(); });
  sim.run_all();
  EXPECT_NEAR(done, 0.005, 1e-6);
}

TEST(IoDevice, SmallOpStallsBehindBigFlush) {
  // The log-flush millibottleneck in miniature.
  Simulation sim;
  IoDevice dev(sim, "d");  // 50 MiB/s
  double small_done = -1;
  dev.submit(25ull * 1024 * 1024, [] {});  // ~0.5 s
  dev.submit_service(Duration::micros(15), [&] { small_done = sim.now().to_seconds(); });
  sim.run_all();
  EXPECT_GT(small_done, 0.45);
}

TEST(IoDevice, BusyAccountingBackToBack) {
  Simulation sim;
  IoDevice dev(sim, "d");
  dev.submit_service(Duration::millis(10), [] {});
  dev.submit_service(Duration::millis(10), [] {});
  sim.run_all();
  EXPECT_NEAR(dev.busy_seconds_until(sim.now()), 0.020, 1e-6);
}

TEST(IoDevice, BusyAccountingWithIdleGap) {
  Simulation sim;
  IoDevice dev(sim, "d");
  dev.submit_service(Duration::millis(10), [] {});
  sim.after(Duration::millis(100), [&] {
    dev.submit_service(Duration::millis(10), [] {});
  });
  sim.run_all();
  EXPECT_NEAR(dev.busy_seconds_until(sim.now()), 0.020, 1e-6);
  // Mid-gap query sees only the first op.
  EXPECT_NEAR(dev.busy_seconds_until(Time::from_seconds(0.05)), 0.010, 1e-6);
}

TEST(IoDevice, BusyPartialWindow) {
  Simulation sim;
  IoDevice dev(sim, "d");
  dev.submit_service(Duration::millis(100), [] {});
  sim.run_until(Time::from_seconds(0.03));
  EXPECT_NEAR(dev.busy_seconds_until(sim.now()), 0.030, 1e-6);
}

}  // namespace
}  // namespace ntier::cpu
