#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace ntier::sim {
namespace {

Time at(double s) { return Time::from_seconds(s); }

TEST(EventQueue, EmptyQueue) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.next_time(), Time::max());
  EXPECT_FALSE(q.pop_and_run());
}

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(at(3), [&] { order.push_back(3); });
  q.push(at(1), [&] { order.push_back(1); });
  q.push(at(2), [&] { order.push_back(2); });
  while (q.pop_and_run()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoAmongEqualTimes) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) q.push(at(1), [&order, i] { order.push_back(i); });
  while (q.pop_and_run()) {
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  auto h = q.push(at(1), [] {});
  q.push(at(2), [] {});
  h.cancel();
  EXPECT_EQ(q.next_time(), at(2));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  int fired = 0;
  auto h = q.push(at(1), [&] { ++fired; });
  h.cancel();
  while (q.pop_and_run()) {
  }
  EXPECT_EQ(fired, 0);
}

TEST(EventQueue, CancelAfterFireIsNoop) {
  EventQueue q;
  int fired = 0;
  auto h = q.push(at(1), [&] { ++fired; });
  EXPECT_TRUE(q.pop_and_run());
  EXPECT_FALSE(h.pending());
  h.cancel();  // must not crash or double-count
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, HandlePendingLifecycle) {
  EventQueue q;
  EventHandle none;
  EXPECT_FALSE(none.pending());
  auto h = q.push(at(1), [] {});
  EXPECT_TRUE(h.pending());
  q.pop_and_run();
  EXPECT_FALSE(h.pending());
}

TEST(EventQueue, EventsCanPushEvents) {
  EventQueue q;
  std::vector<int> order;
  q.push(at(1), [&] {
    order.push_back(1);
    q.push(at(2), [&] { order.push_back(2); });
  });
  while (q.pop_and_run()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, CancelledEntriesDoNotBlockEmpty) {
  EventQueue q;
  auto h1 = q.push(at(1), [] {});
  auto h2 = q.push(at(2), [] {});
  h1.cancel();
  h2.cancel();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ManyInterleaved) {
  EventQueue q;
  std::vector<Time> fired;
  for (int i = 100; i > 0; --i)
    q.push(Time::from_micros(i * 7 % 101), [&fired, i] { fired.push_back(Time::from_micros(i * 7 % 101)); });
  while (q.pop_and_run()) {
  }
  ASSERT_EQ(fired.size(), 100u);
  for (std::size_t i = 1; i < fired.size(); ++i) EXPECT_LE(fired[i - 1], fired[i]);
}

}  // namespace
}  // namespace ntier::sim
