#include "server/sync_server.h"

#include <gtest/gtest.h>

#include "helpers.h"
#include "net/rto_policy.h"

namespace ntier::server {
namespace {

using sim::Duration;
using sim::Simulation;
using sim::Time;
using test::ReplySink;

struct Fixture {
  Simulation sim;
  cpu::HostCpu host{sim, 1.0};
  cpu::VmCpu* vm = host.add_vm("srv");
  AppProfile profile = test::one_class_profile();
  ReplySink sink{sim};

  std::unique_ptr<SyncServer> make(SyncConfig cfg, Program prog) {
    return std::make_unique<SyncServer>(
        sim, "srv", vm, &profile,
        [prog](const RequestClassProfile&) { return prog; }, cfg);
  }
};

TEST(SyncServer, ProcessesAndReplies) {
  Fixture f;
  SyncConfig cfg;
  cfg.threads_per_process = 1;
  auto srv = f.make(cfg, test::cpu_only(Duration::millis(10)));
  EXPECT_TRUE(srv->offer(f.sink.job(7)));
  f.sim.run_all();
  ASSERT_EQ(f.sink.replies.size(), 1u);
  EXPECT_EQ(f.sink.replies[0].first, 7u);
  EXPECT_NEAR(f.sink.replies[0].second.to_seconds(), 0.010, 1e-4);
  EXPECT_EQ(srv->stats().completed, 1u);
  EXPECT_EQ(srv->queued_requests(), 0u);
}

TEST(SyncServer, ThreadsBoundConcurrency) {
  Fixture f;
  SyncConfig cfg;
  cfg.threads_per_process = 2;
  auto srv = f.make(cfg, test::cpu_only(Duration::millis(10)));
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(srv->offer(f.sink.job(i)));
  EXPECT_EQ(srv->busy_workers(), 2u);
  EXPECT_EQ(srv->backlog_depth(), 1u);
  f.sim.run_all();
  ASSERT_EQ(f.sink.replies.size(), 3u);
  // Two share the core then finish together at ~20ms; third runs alone.
  EXPECT_NEAR(f.sink.replies[2].second.to_seconds(), 0.030, 1e-3);
}

TEST(SyncServer, BacklogOverflowDrops) {
  Fixture f;
  SyncConfig cfg;
  cfg.threads_per_process = 1;
  cfg.backlog = 1;
  auto srv = f.make(cfg, test::cpu_only(Duration::millis(10)));
  EXPECT_TRUE(srv->offer(f.sink.job(1)));   // worker
  EXPECT_TRUE(srv->offer(f.sink.job(2)));   // backlog
  EXPECT_FALSE(srv->offer(f.sink.job(3)));  // dropped
  EXPECT_EQ(srv->stats().dropped, 1u);
  ASSERT_EQ(srv->drop_times().size(), 1u);
  EXPECT_EQ(srv->queued_requests(), 2u);
}

TEST(SyncServer, MaxSysQDepthArithmetic) {
  Fixture f;
  SyncConfig cfg;
  cfg.threads_per_process = 150;
  cfg.backlog = 128;
  auto srv = f.make(cfg, test::cpu_only(Duration::millis(1)));
  EXPECT_EQ(srv->max_sys_q_depth(), 278u);  // the paper's number
}

TEST(SyncServer, QueuedNeverExceedsMaxSysQDepth) {
  Fixture f;
  SyncConfig cfg;
  cfg.threads_per_process = 3;
  cfg.backlog = 2;
  auto srv = f.make(cfg, test::cpu_only(Duration::millis(5)));
  int admitted = 0;
  for (int i = 0; i < 20; ++i) admitted += srv->offer(f.sink.job(i));
  EXPECT_EQ(admitted, 5);
  EXPECT_EQ(srv->queued_requests(), srv->max_sys_q_depth());
}

TEST(SyncServer, BacklogDrainsInFifoOrder) {
  Fixture f;
  SyncConfig cfg;
  cfg.threads_per_process = 1;
  auto srv = f.make(cfg, test::cpu_only(Duration::millis(10)));
  for (int i = 0; i < 3; ++i) srv->offer(f.sink.job(i));
  f.sim.run_all();
  ASSERT_EQ(f.sink.replies.size(), 3u);
  EXPECT_EQ(f.sink.replies[0].first, 0u);
  EXPECT_EQ(f.sink.replies[1].first, 1u);
  EXPECT_EQ(f.sink.replies[2].first, 2u);
}

TEST(SyncServer, DownstreamChainRepliesPropagate) {
  Fixture f;
  SyncConfig cfg;
  cfg.threads_per_process = 4;
  auto down = f.make(cfg, test::cpu_only(Duration::millis(5)));
  auto up = f.make(cfg, test::cpu_down_cpu(Duration::millis(1), Duration::millis(1)));
  up->connect_downstream(down.get(), net::RtoPolicy::fixed3s(),
                         net::Link{Duration::micros(100)});
  EXPECT_TRUE(up->offer(f.sink.job(1)));
  f.sim.run_all();
  ASSERT_EQ(f.sink.replies.size(), 1u);
  // 1ms + link + 5ms + link + 1ms (+PS sharing of the single core).
  EXPECT_GT(f.sink.replies[0].second.to_seconds(), 0.007);
  EXPECT_EQ(down->stats().completed, 1u);
}

TEST(SyncServer, WorkerHeldAcrossDownstreamWait) {
  // The RPC coupling: with 1 thread, a second job cannot start while the
  // first waits on the (slow) downstream tier.
  Fixture f;
  SyncConfig cfg1;
  cfg1.threads_per_process = 1;
  SyncConfig cfg_down;
  cfg_down.threads_per_process = 1;
  auto down = f.make(cfg_down, test::cpu_only(Duration::millis(50)));
  auto up = f.make(cfg1, test::cpu_down_cpu(Duration::micros(10), Duration::micros(10)));
  up->connect_downstream(down.get(), net::RtoPolicy::fixed3s(), net::Link{});
  EXPECT_TRUE(up->offer(f.sink.job(1)));
  EXPECT_TRUE(up->offer(f.sink.job(2)));  // goes to backlog, not a worker
  f.sim.run_until(Time::from_seconds(0.01));
  EXPECT_EQ(up->busy_workers(), 1u);
  EXPECT_EQ(up->backlog_depth(), 1u);
  f.sim.run_all();
  EXPECT_EQ(f.sink.replies.size(), 2u);
}

TEST(SyncServer, ConnectionPoolBoundsDownstreamInflight) {
  Fixture f;
  SyncConfig up_cfg;
  up_cfg.threads_per_process = 10;
  up_cfg.db_pool = 1;  // only one query in flight
  SyncConfig down_cfg;
  down_cfg.threads_per_process = 10;
  auto down = f.make(down_cfg, test::cpu_only(Duration::millis(10)));
  auto up = f.make(up_cfg, test::cpu_down_cpu(Duration::micros(1), Duration::micros(1)));
  up->connect_downstream(down.get(), net::RtoPolicy::fixed3s(), net::Link{});
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(up->offer(f.sink.job(i)));
  f.sim.run_until(Time::from_seconds(0.005));
  EXPECT_LE(down->queued_requests(), 1u);
  f.sim.run_all();
  EXPECT_EQ(f.sink.replies.size(), 5u);
  EXPECT_EQ(up->pool()->in_use(), 0u);
}

TEST(SyncServer, ProcessSpawnAfterSustainedExhaustion) {
  Fixture f;
  SyncConfig cfg;
  cfg.threads_per_process = 1;
  cfg.max_processes = 2;
  cfg.process_spawn_after = Duration::millis(50);
  auto srv = f.make(cfg, test::cpu_only(Duration::millis(500)));
  srv->offer(f.sink.job(1));  // occupies the only worker for 500ms
  EXPECT_EQ(srv->thread_count(), 1u);
  // Offers keep arriving; after 50ms of exhaustion the spawn triggers.
  for (int i = 0; i < 10; ++i) {
    f.sim.after(Duration::millis(10 * (i + 1)),
                [&, i] { srv->offer(f.sink.job(100 + i)); });
  }
  f.sim.run_until(Time::from_seconds(0.2));
  EXPECT_EQ(srv->process_count(), 2u);
  EXPECT_EQ(srv->thread_count(), 2u);
  EXPECT_EQ(srv->max_sys_q_depth(), 2u + cfg.backlog);
}

TEST(SyncServer, NoSpawnWhenExhaustionIsBrief) {
  Fixture f;
  SyncConfig cfg;
  cfg.threads_per_process = 1;
  cfg.max_processes = 2;
  cfg.process_spawn_after = Duration::millis(500);
  auto srv = f.make(cfg, test::cpu_only(Duration::millis(5)));
  for (int i = 0; i < 40; ++i) {
    f.sim.after(Duration::millis(6 * i), [&, i] { srv->offer(f.sink.job(i)); });
  }
  f.sim.run_all();
  EXPECT_EQ(srv->process_count(), 1u);
}

TEST(SyncServer, OverheadInflatesServiceTime) {
  Fixture f;
  SyncConfig cfg;
  cfg.threads_per_process = 1;
  cfg.overhead.alpha_per_thread = 1.0;  // x2 with one busy thread
  auto srv = f.make(cfg, test::cpu_only(Duration::millis(10)));
  srv->offer(f.sink.job(1));
  f.sim.run_all();
  EXPECT_NEAR(f.sink.replies[0].second.to_seconds(), 0.020, 1e-3);
}

TEST(SyncServer, DiskStepUsesIoDevice) {
  Fixture f;
  cpu::IoDevice disk(f.sim, "d");
  SyncConfig cfg;
  cfg.threads_per_process = 1;
  Program prog{WorkStep{WorkStep::Kind::kCpu, Duration::millis(1)},
               WorkStep{WorkStep::Kind::kDisk, Duration::millis(20)}};
  auto srv = f.make(cfg, prog);
  srv->attach_io(&disk);
  srv->offer(f.sink.job(1));
  f.sim.run_all();
  EXPECT_NEAR(f.sink.replies[0].second.to_seconds(), 0.021, 1e-3);
  EXPECT_EQ(disk.ops_completed(), 1u);
}

TEST(SyncServer, StatsCountersConsistent) {
  Fixture f;
  SyncConfig cfg;
  cfg.threads_per_process = 1;
  cfg.backlog = 0;
  auto srv = f.make(cfg, test::cpu_only(Duration::millis(10)));
  EXPECT_TRUE(srv->offer(f.sink.job(1)));
  EXPECT_FALSE(srv->offer(f.sink.job(2)));
  f.sim.run_all();
  EXPECT_EQ(srv->stats().offered, 2u);
  EXPECT_EQ(srv->stats().accepted, 1u);
  EXPECT_EQ(srv->stats().dropped, 1u);
  EXPECT_EQ(srv->stats().completed, 1u);
}

TEST(SyncServer, RetransmittedQueryEventuallyServed) {
  // Downstream full at first attempt; accepts on the 3 s retransmit.
  Fixture f;
  SyncConfig up_cfg;
  up_cfg.threads_per_process = 1;
  SyncConfig down_cfg;
  down_cfg.threads_per_process = 1;
  down_cfg.backlog = 0;
  auto down = f.make(down_cfg, test::cpu_only(Duration::millis(3500)));
  auto up = f.make(up_cfg, test::cpu_down_cpu(Duration::micros(10), Duration::micros(10)));
  up->connect_downstream(down.get(), net::RtoPolicy::fixed3s(), net::Link{});
  // Occupy downstream's only worker directly.
  down->offer(f.sink.job(99));
  up->offer(f.sink.job(1));
  f.sim.run_all();
  ASSERT_EQ(f.sink.replies.size(), 2u);
  // Request 1: attempts at ~0 s and ~3 s are both dropped (the blocking
  // job runs until 3.5 s); the 6 s retransmit is admitted and served for
  // 3.5 s -> reply at ~9.5 s with two recorded drops.
  EXPECT_EQ(f.sink.replies[1].first, 1u);
  EXPECT_GT(f.sink.replies[1].second.to_seconds(), 9.0);
  EXPECT_LT(f.sink.replies[1].second.to_seconds(), 10.5);
  EXPECT_EQ(down->stats().dropped, 2u);
}

}  // namespace
}  // namespace ntier::server
