#include "server/app_profile.h"

#include <gtest/gtest.h>

namespace ntier::server {
namespace {

using sim::Duration;

TEST(AppProfile, RubbosHasExpectedClasses) {
  const auto p = AppProfile::rubbos();
  ASSERT_EQ(p.classes.size(), 3u);
  EXPECT_EQ(p.classes[p.index_of("Static")].is_static, true);
  EXPECT_EQ(p.classes[p.index_of("ViewStory")].db_queries, 2);
  EXPECT_EQ(p.classes[p.index_of("StoriesOfTheDay")].db_queries, 1);
}

TEST(AppProfile, IndexOfThrowsOnUnknown) {
  const auto p = AppProfile::rubbos();
  EXPECT_THROW((void)p.index_of("nope"), std::out_of_range);
}

TEST(AppProfile, PickFollowsWeights) {
  const auto p = AppProfile::rubbos();
  sim::Rng rng(2);
  std::vector<int> counts(p.classes.size(), 0);
  const int n = 30000;
  for (int i = 0; i < n; ++i) ++counts[p.pick(rng)];
  EXPECT_NEAR(counts[0] / double(n), 0.15, 0.01);
  EXPECT_NEAR(counts[1] / double(n), 0.55, 0.01);
  EXPECT_NEAR(counts[2] / double(n), 0.30, 0.01);
}

TEST(AppProfile, MeanAppCpuMatchesWeights) {
  const auto p = AppProfile::rubbos();
  // 0.55*(150+600) + 0.30*(200+960) = 412.5 + 348 = 760.5 us. At the
  // closed-loop throughputs of WL 4000/7000/8000 this puts the app tier
  // at the paper's 43/75/85 % utilization points.
  EXPECT_NEAR(p.mean_app_cpu().to_seconds(), 760.5e-6, 1e-6);
}

TEST(Programs, StaticWebProgramHasNoDownstream) {
  const auto p = AppProfile::rubbos();
  const auto prog = web_program(p.at(p.index_of("Static")));
  ASSERT_EQ(prog.size(), 1u);
  EXPECT_EQ(prog[0].kind, WorkStep::Kind::kCpu);
}

TEST(Programs, DynamicWebProgramShape) {
  const auto p = AppProfile::rubbos();
  const auto prog = web_program(p.at(p.index_of("ViewStory")));
  ASSERT_EQ(prog.size(), 3u);
  EXPECT_EQ(prog[0].kind, WorkStep::Kind::kCpu);
  EXPECT_EQ(prog[1].kind, WorkStep::Kind::kDownstream);
  EXPECT_EQ(prog[2].kind, WorkStep::Kind::kCpu);
}

TEST(Programs, AppProgramHasOneDownstreamPerQuery) {
  const auto p = AppProfile::rubbos();
  const auto prog = app_program(p.at(p.index_of("ViewStory")));
  int downstream = 0;
  for (const auto& s : prog)
    if (s.kind == WorkStep::Kind::kDownstream) ++downstream;
  EXPECT_EQ(downstream, 2);
  // pre + 2x(down + slice)
  ASSERT_EQ(prog.size(), 5u);
  EXPECT_EQ(prog[0].kind, WorkStep::Kind::kCpu);
  EXPECT_EQ(prog[0].amount, Duration::micros(200));
}

TEST(Programs, AppProgramSlicesPostWork) {
  const auto p = AppProfile::rubbos();
  const auto c = p.at(p.index_of("ViewStory"));
  const auto prog = app_program(c);
  Duration total;
  for (const auto& s : prog)
    if (s.kind == WorkStep::Kind::kCpu) total += s.amount;
  EXPECT_EQ(total, c.app_pre + c.app_post);
}

TEST(Programs, DbProgramCpuThenDisk) {
  const auto p = AppProfile::rubbos();
  const auto prog = db_program(p.at(p.index_of("StoriesOfTheDay")));
  ASSERT_EQ(prog.size(), 2u);
  EXPECT_EQ(prog[0].kind, WorkStep::Kind::kCpu);
  EXPECT_EQ(prog[1].kind, WorkStep::Kind::kDisk);
}

TEST(Programs, DbProgramOmitsDiskWhenZero) {
  RequestClassProfile c;
  c.db_cpu = Duration::micros(100);
  c.db_io = Duration::zero();
  EXPECT_EQ(db_program(c).size(), 1u);
}

TEST(Programs, AppProgramWithoutQueries) {
  RequestClassProfile c;
  c.app_pre = Duration::micros(10);
  c.app_post = Duration::micros(20);
  c.db_queries = 0;
  const auto prog = app_program(c);
  ASSERT_EQ(prog.size(), 2u);
  EXPECT_EQ(prog[0].kind, WorkStep::Kind::kCpu);
  EXPECT_EQ(prog[1].kind, WorkStep::Kind::kCpu);
}

}  // namespace
}  // namespace ntier::server
