#include "server/async_server.h"

#include <gtest/gtest.h>

#include "helpers.h"
#include "net/rto_policy.h"
#include "server/sync_server.h"

namespace ntier::server {
namespace {

using sim::Duration;
using sim::Simulation;
using sim::Time;
using test::ReplySink;

struct Fixture {
  Simulation sim;
  cpu::HostCpu host{sim, 1.0};
  cpu::VmCpu* vm = host.add_vm("srv");
  AppProfile profile = test::one_class_profile();
  ReplySink sink{sim};

  std::unique_ptr<AsyncServer> make(AsyncConfig cfg, Program prog) {
    return std::make_unique<AsyncServer>(
        sim, "srv", vm, &profile,
        [prog](const RequestClassProfile&) { return prog; }, cfg);
  }
  std::unique_ptr<SyncServer> make_sync(SyncConfig cfg, Program prog) {
    return std::make_unique<SyncServer>(
        sim, "srv2", vm, &profile,
        [prog](const RequestClassProfile&) { return prog; }, cfg);
  }
};

TEST(AsyncServer, ProcessesAndReplies) {
  Fixture f;
  auto srv = f.make(AsyncConfig{}, test::cpu_only(Duration::millis(10)));
  EXPECT_TRUE(srv->offer(f.sink.job(5)));
  f.sim.run_all();
  ASSERT_EQ(f.sink.replies.size(), 1u);
  EXPECT_NEAR(f.sink.replies[0].second.to_seconds(), 0.010, 1e-4);
}

TEST(AsyncServer, MaxActiveSerializesProcessing) {
  Fixture f;
  AsyncConfig cfg;
  cfg.max_active = 1;
  auto srv = f.make(cfg, test::cpu_only(Duration::millis(10)));
  srv->offer(f.sink.job(1));
  srv->offer(f.sink.job(2));
  EXPECT_EQ(srv->busy_workers(), 1u);
  EXPECT_EQ(srv->backlog_depth(), 1u);
  f.sim.run_all();
  ASSERT_EQ(f.sink.replies.size(), 2u);
  EXPECT_NEAR(f.sink.replies[0].second.to_seconds(), 0.010, 1e-4);
  EXPECT_NEAR(f.sink.replies[1].second.to_seconds(), 0.020, 1e-4);
}

TEST(AsyncServer, LiteQDepthBoundsAdmission) {
  Fixture f;
  AsyncConfig cfg;
  cfg.lite_q_depth = 2;
  cfg.max_active = 1;
  auto srv = f.make(cfg, test::cpu_only(Duration::millis(10)));
  EXPECT_TRUE(srv->offer(f.sink.job(1)));
  EXPECT_TRUE(srv->offer(f.sink.job(2)));
  EXPECT_FALSE(srv->offer(f.sink.job(3)));
  EXPECT_EQ(srv->stats().dropped, 1u);
  EXPECT_EQ(srv->max_sys_q_depth(), 2u);
}

TEST(AsyncServer, HugeLiteQAbsorbsBurst) {
  Fixture f;
  AsyncConfig cfg;  // 65535 default
  auto srv = f.make(cfg, test::cpu_only(Duration::micros(100)));
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(srv->offer(f.sink.job(i)));
  EXPECT_EQ(srv->stats().dropped, 0u);
  EXPECT_EQ(srv->queued_requests(), 1000u);
  f.sim.run_all();
  EXPECT_EQ(f.sink.replies.size(), 1000u);
}

TEST(AsyncServer, DownstreamCallReleasesSlot) {
  // With max_active=1, a parked request must not block the next one.
  Fixture f;
  AsyncConfig up_cfg;
  up_cfg.max_active = 1;
  SyncConfig down_cfg;
  down_cfg.threads_per_process = 4;
  auto down = f.make_sync(down_cfg, test::cpu_only(Duration::millis(50)));
  auto up = f.make(up_cfg, test::cpu_down_cpu(Duration::micros(10), Duration::micros(10)));
  up->connect_downstream(down.get(), net::RtoPolicy::fixed3s(), net::Link{});
  up->offer(f.sink.job(1));
  up->offer(f.sink.job(2));
  f.sim.run_until(Time::from_seconds(0.005));
  // Both requests made it downstream despite max_active=1.
  EXPECT_EQ(down->queued_requests(), 2u);
  f.sim.run_all();
  EXPECT_EQ(f.sink.replies.size(), 2u);
}

TEST(AsyncServer, UnboundedDownstreamConcurrencyVsSyncBound) {
  // The paper's NX=1 lesson: an async upstream pushes *all* queued work
  // downstream, unlike a sync upstream bounded by its thread pool.
  Fixture f;
  SyncConfig down_cfg;
  down_cfg.threads_per_process = 2;
  down_cfg.backlog = 3;
  auto down = f.make_sync(down_cfg, test::cpu_only(Duration::millis(20)));
  AsyncConfig up_cfg;
  auto up = f.make(up_cfg, test::cpu_down_cpu(Duration::micros(1), Duration::micros(1)));
  up->connect_downstream(down.get(), net::RtoPolicy::fixed3s(), net::Link{});
  for (int i = 0; i < 10; ++i) up->offer(f.sink.job(i));
  f.sim.run_until(Time::from_seconds(0.01));
  // Downstream got flooded to its MaxSysQDepth and dropped the rest.
  EXPECT_EQ(down->queued_requests(), 5u);
  EXPECT_GT(down->stats().dropped, 0u);
}

TEST(AsyncServer, BatchReleaseAfterFreeze) {
  // Fig 9 mechanics: requests accumulate during the freeze, then their
  // downstream queries all dispatch within the tiny pre-CPU time.
  Fixture f;
  AsyncConfig up_cfg;
  auto down = f.make_sync(SyncConfig{.threads_per_process = 1000, .backlog = 1000},
                          test::cpu_only(Duration::millis(5)));
  auto up = f.make(up_cfg, test::cpu_down_cpu(Duration::micros(10), Duration::micros(10)));
  up->connect_downstream(down.get(), net::RtoPolicy::fixed3s(), net::Link{});
  f.vm->freeze_for(Duration::millis(500));
  for (int i = 0; i < 100; ++i) up->offer(f.sink.job(i));
  f.sim.run_until(Time::from_seconds(0.499));
  EXPECT_EQ(down->queued_requests(), 0u);  // nothing dispatched during freeze
  f.sim.run_until(Time::from_seconds(0.52));
  // Within ~20ms of thaw, (nearly) the whole batch reached downstream.
  EXPECT_GT(down->stats().accepted, 90u);
}

TEST(AsyncServer, ResumedWorkBeatsNewArrivals) {
  Fixture f;
  AsyncConfig cfg;
  cfg.max_active = 1;
  SyncConfig down_cfg;
  down_cfg.threads_per_process = 4;
  auto down = f.make_sync(down_cfg, test::cpu_only(Duration::millis(1)));
  auto up = f.make(cfg, test::cpu_down_cpu(Duration::millis(2), Duration::millis(2)));
  up->connect_downstream(down.get(), net::RtoPolicy::fixed3s(), net::Link{});
  up->offer(f.sink.job(1));
  // New arrivals stream in while request 1 is parked downstream.
  for (int i = 2; i <= 5; ++i)
    f.sim.after(Duration::millis(i), [&f, &up, i] { up->offer(f.sink.job(i)); });
  f.sim.run_all();
  ASSERT_EQ(f.sink.replies.size(), 5u);
  EXPECT_EQ(f.sink.replies[0].first, 1u);  // resumed request finished first
}

TEST(AsyncServer, StatsAndInSystemConsistent) {
  Fixture f;
  auto srv = f.make(AsyncConfig{}, test::cpu_only(Duration::millis(1)));
  for (int i = 0; i < 10; ++i) srv->offer(f.sink.job(i));
  f.sim.run_all();
  EXPECT_EQ(srv->stats().accepted, 10u);
  EXPECT_EQ(srv->stats().completed, 10u);
  EXPECT_EQ(srv->queued_requests(), 0u);
}

TEST(AsyncServer, DiskStepHoldsSlot) {
  // InnoDB thread blocked on disk still occupies one of the 8 slots.
  Fixture f;
  cpu::IoDevice disk(f.sim, "d");
  AsyncConfig cfg;
  cfg.max_active = 1;
  Program prog{WorkStep{WorkStep::Kind::kCpu, Duration::micros(10)},
               WorkStep{WorkStep::Kind::kDisk, Duration::millis(10)}};
  auto srv = f.make(cfg, prog);
  srv->attach_io(&disk);
  srv->offer(f.sink.job(1));
  srv->offer(f.sink.job(2));
  f.sim.run_until(Time::from_seconds(0.005));
  EXPECT_EQ(srv->busy_workers(), 1u);  // second job waits for the slot
  f.sim.run_all();
  EXPECT_EQ(f.sink.replies.size(), 2u);
  EXPECT_GT(f.sink.replies[1].second.to_seconds(), 0.020);
}

}  // namespace
}  // namespace ntier::server
