// The tier presets must encode the paper's published parameters exactly
// (Fig 13 and the MaxSysQDepth arithmetic of §III-§V).
#include "server/tiers.h"

#include <gtest/gtest.h>

#include "helpers.h"

namespace ntier::server::tiers {
namespace {

TEST(TierPresets, ApacheConfig) {
  const auto c = apache_config();
  EXPECT_EQ(c.threads_per_process, 150u);
  EXPECT_EQ(c.max_processes, 2u);  // prefork second process
  EXPECT_EQ(c.backlog, 128u);
  EXPECT_EQ(c.db_pool, 0u);
}

TEST(TierPresets, TomcatConfig) {
  const auto c = tomcat_config();
  EXPECT_EQ(c.threads_per_process, 150u);
  EXPECT_EQ(c.max_processes, 1u);
  EXPECT_EQ(c.db_pool, 50u);  // JDBC pool
  EXPECT_EQ(tomcat_config(165).threads_per_process, 165u);  // NX=1 variant
}

TEST(TierPresets, MysqlConfig) {
  const auto c = mysql_config();
  EXPECT_EQ(c.threads_per_process, 100u);
  EXPECT_EQ(c.backlog, 128u);  // MaxSysQDepth 228
}

TEST(TierPresets, AsyncConfigs) {
  EXPECT_EQ(nginx_config().lite_q_depth, 65535u);
  EXPECT_EQ(xtomcat_config().lite_q_depth, 65535u);
  EXPECT_EQ(xmysql_config().lite_q_depth, 2000u);  // InnoDB wait queue
  EXPECT_EQ(xmysql_config().max_active, 8u);       // InnoDB threads
}

TEST(TierPresets, FactoriesNameServers) {
  sim::Simulation sim;
  cpu::HostCpu host(sim, 1.0);
  auto* vm = host.add_vm("vm");
  const auto profile = AppProfile::rubbos();
  EXPECT_EQ(make_apache(sim, vm, &profile)->name(), "apache");
  EXPECT_EQ(make_tomcat(sim, vm, &profile)->name(), "tomcat");
  EXPECT_EQ(make_mysql(sim, vm, &profile)->name(), "mysql");
  EXPECT_EQ(make_nginx(sim, vm, &profile)->name(), "nginx");
  EXPECT_EQ(make_xtomcat(sim, vm, &profile)->name(), "xtomcat");
  EXPECT_EQ(make_xmysql(sim, vm, &profile)->name(), "xmysql");
}

TEST(TierPresets, MaxSysQDepthArithmetic) {
  sim::Simulation sim;
  cpu::HostCpu host(sim, 1.0);
  auto* vm = host.add_vm("vm");
  const auto profile = AppProfile::rubbos();
  EXPECT_EQ(make_apache(sim, vm, &profile)->max_sys_q_depth(), 278u);
  EXPECT_EQ(make_tomcat(sim, vm, &profile)->max_sys_q_depth(), 278u);
  EXPECT_EQ(make_mysql(sim, vm, &profile)->max_sys_q_depth(), 228u);
  EXPECT_EQ(make_xmysql(sim, vm, &profile)->max_sys_q_depth(), 2000u);
}

TEST(TierPresets, ProgramsWiredPerTierRole) {
  // Apache serves static requests locally (1-step program); Tomcat
  // issues DB queries; MySQL touches its disk.
  sim::Simulation sim;
  cpu::HostCpu host(sim, 4.0);
  auto* vm = host.add_vm("vm", 4);
  const auto profile = AppProfile::rubbos();
  cpu::IoDevice disk(sim, "d");

  auto apache = make_apache(sim, vm, &profile);
  auto tomcat = make_tomcat(sim, vm, &profile);
  auto mysql = make_mysql(sim, vm, &profile);
  mysql->attach_io(&disk);
  tomcat->connect_downstream(mysql.get(), net::RtoPolicy::fixed3s(), net::Link{});
  apache->connect_downstream(tomcat.get(), net::RtoPolicy::fixed3s(), net::Link{});

  test::ReplySink sink(sim);
  auto job = sink.job(1);
  job.req->class_index = profile.index_of("ViewStory");
  EXPECT_TRUE(apache->offer(std::move(job)));
  sim.run_all();
  ASSERT_EQ(sink.replies.size(), 1u);
  EXPECT_EQ(mysql->stats().completed, 2u);  // two queries
  EXPECT_EQ(disk.ops_completed(), 2u);

  auto stat = sink.job(2);
  stat.req->class_index = profile.index_of("Static");
  EXPECT_TRUE(apache->offer(std::move(stat)));
  sim.run_all();
  EXPECT_EQ(sink.replies.size(), 2u);
  EXPECT_EQ(mysql->stats().completed, 2u);  // static never reached the DB
}

}  // namespace
}  // namespace ntier::server::tiers
