// Tests for the obs layer: detector state machines on synthetic window
// series, flight-recorder ring/freeze/retroactive-window semantics, and
// the end-to-end contract on the fig 5 log-flush scenario — online
// detection fires on the right series before the first VLRT, the
// retroactive dump covers the causal drop episode, and (DESIGN.md
// invariant 10) enabling detection leaves every artifact byte-identical.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/correlate.h"
#include "core/ctqo_analyzer.h"
#include "core/experiment.h"
#include "core/manifest.h"
#include "core/scenarios.h"
#include "obs/detector.h"
#include "obs/flight_recorder.h"
#include "obs/incident_monitor.h"
#include "report/dashboard.h"
#include "trace/span.h"
#include "trace/tracer.h"

namespace ntier::obs {
namespace {

using sim::Duration;
using sim::Time;

// ---------------------------------------------------------------- detectors

// Feeds `n` copies of `value` and returns how many fire/clear edges
// were produced.
struct Edges {
  int fires = 0;
  int clears = 0;
};
Edges feed(Detector& d, double value, int n) {
  Edges e;
  for (int i = 0; i < n; ++i) {
    switch (d.observe(value)) {
      case Detector::Edge::kFire: ++e.fires; break;
      case Detector::Edge::kClear: ++e.clears; break;
      case Detector::Edge::kNone: break;
    }
  }
  return e;
}

TEST(DetectorThreshold, ArmsAfterConsecutiveWindowsAndClearsAfterCalm) {
  DetectorSpec s;
  s.kind = DetectorKind::kThreshold;
  s.threshold = 99.0;
  s.arm_windows = 2;
  s.clear_windows = 3;
  Detector d(s);

  EXPECT_EQ(d.observe(50.0), Detector::Edge::kNone);
  EXPECT_EQ(d.observe(100.0), Detector::Edge::kNone);  // over, 1 of 2
  EXPECT_EQ(d.observe(100.0), Detector::Edge::kFire);  // armed
  EXPECT_TRUE(d.firing());
  EXPECT_EQ(d.observe(100.0), Detector::Edge::kNone);  // stays firing
  EXPECT_EQ(d.observe(50.0), Detector::Edge::kNone);   // calm, 1 of 3
  EXPECT_EQ(d.observe(50.0), Detector::Edge::kNone);
  EXPECT_EQ(d.observe(50.0), Detector::Edge::kClear);
  EXPECT_FALSE(d.firing());
}

TEST(DetectorThreshold, SingleWindowSpikeDoesNotFire) {
  DetectorSpec s;
  s.kind = DetectorKind::kThreshold;
  s.threshold = 99.0;
  s.arm_windows = 2;
  Detector d(s);
  // Alternating spikes never accumulate two consecutive over-windows.
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(d.observe(100.0), Detector::Edge::kNone);
    EXPECT_EQ(d.observe(0.0), Detector::Edge::kNone);
  }
  EXPECT_FALSE(d.firing());
}

TEST(DetectorEwmaZ, SilentDuringWarmupThenFiresOnStep) {
  DetectorSpec s;
  s.kind = DetectorKind::kEwmaZ;
  s.z_fire = 4.0;
  s.min_sigma = 1.0;
  s.warmup_windows = 5;
  s.arm_windows = 1;
  Detector d(s);

  // A huge value inside the warmup window must not fire.
  EXPECT_EQ(d.observe(0.0), Detector::Edge::kNone);
  EXPECT_EQ(d.observe(1000.0), Detector::Edge::kNone);

  Detector fresh(s);
  EXPECT_EQ(feed(fresh, 10.0, 10).fires, 0);  // flat baseline, z == 0
  // Step change: z = (100 - ~10) / max(sigma, 1) >> z_fire.
  EXPECT_EQ(fresh.observe(100.0), Detector::Edge::kFire);
  EXPECT_GE(fresh.statistic(), s.z_fire);
}

TEST(DetectorBurnRate, StatisticIsBadFractionOverBudget) {
  DetectorSpec s;
  s.kind = DetectorKind::kBurnRate;
  s.slo = 0.0;       // any VLRT in the window burns budget
  s.budget = 0.02;
  s.lookback_windows = 40;
  s.burn_fire = 2.0;
  s.burn_clear = 1.0;
  s.arm_windows = 1;
  Detector d(s);

  EXPECT_EQ(feed(d, 0.0, 40).fires, 0);  // clean history, burn 0
  // One bad window: bad_frac 1/40 = 0.025, burn 0.025/0.02 = 1.25.
  EXPECT_EQ(d.observe(1.0), Detector::Edge::kNone);
  EXPECT_DOUBLE_EQ(d.statistic(), 1.25);
  // A second bad window pushes burn to 2.5 >= burn_fire.
  EXPECT_EQ(d.observe(1.0), Detector::Edge::kFire);
  EXPECT_DOUBLE_EQ(d.statistic(), 2.5);
  // Once the bad windows age out of the lookback the burn collapses and
  // the detector clears after clear_windows of calm.
  EXPECT_EQ(feed(d, 0.0, 80).clears, 1);
  EXPECT_FALSE(d.firing());
}

TEST(DetectorCusum, IntegratesPersistentShiftAndDrains) {
  DetectorSpec s;
  s.kind = DetectorKind::kCusum;
  s.cusum_ref = 0.0;
  s.cusum_k = 0.5;
  s.cusum_h = 3.0;
  s.arm_windows = 1;
  s.clear_windows = 2;
  Detector d(s);

  // 1.0 per window accumulates (1.0 - 0.5) = 0.5 of evidence a window:
  // S reaches h = 3.0 on the 6th window.
  for (int i = 0; i < 5; ++i) EXPECT_EQ(d.observe(1.0), Detector::Edge::kNone);
  EXPECT_EQ(d.observe(1.0), Detector::Edge::kFire);
  EXPECT_DOUBLE_EQ(d.statistic(), 3.0);
  // The clamp at 2h bounds the drain time no matter how long the shift
  // lasted; calm windows then drain S back to zero and clear.
  EXPECT_EQ(feed(d, 1.0, 100).fires, 0);  // still firing, no re-fire
  EXPECT_LE(d.statistic(), 2.0 * s.cusum_h);
  EXPECT_EQ(feed(d, 0.0, 40).clears, 1);
  EXPECT_FALSE(d.firing());
}

TEST(DetectorCusum, BelowSlackNeverAccumulates) {
  DetectorSpec s;
  s.kind = DetectorKind::kCusum;
  s.cusum_ref = 0.0;
  s.cusum_k = 0.5;
  s.cusum_h = 3.0;
  Detector d(s);
  EXPECT_EQ(feed(d, 0.4, 200).fires, 0);  // under the slack k forever
  EXPECT_DOUBLE_EQ(d.statistic(), 0.0);
}

TEST(DefaultSuite, BindsEveryGroupSignalPlusVlrtBurnRate) {
  SeriesGroup g;
  g.name = "apache";
  g.saturation = {"apache.busy", "apachedisk.busy"};
  g.queue = "apache.queue";
  g.dropped = "apache.dropped";
  const auto suite = default_suite({g}, 0.5);

  ASSERT_EQ(suite.size(), 5u);
  EXPECT_EQ(suite[0].name, "sat:apache.busy");
  EXPECT_EQ(suite[0].kind, DetectorKind::kThreshold);
  EXPECT_EQ(suite[0].severity, Severity::kCritical);
  EXPECT_EQ(suite[1].name, "sat:apachedisk.busy");
  EXPECT_EQ(suite[2].name, "queue:apache.queue");
  EXPECT_EQ(suite[2].kind, DetectorKind::kEwmaZ);
  EXPECT_EQ(suite[3].name, "drops:apache.dropped");
  EXPECT_EQ(suite[3].kind, DetectorKind::kCusum);
  EXPECT_EQ(suite[4].name, "slo:vlrt");
  EXPECT_EQ(suite[4].series, std::string(kVlrtSeries));
  EXPECT_EQ(suite[4].kind, DetectorKind::kBurnRate);
  EXPECT_DOUBLE_EQ(suite[4].slo, 0.5);
}

// ---------------------------------------------------------- flight recorder

// A pooled one-span trace [begin_s, end_s); end_s < 0 leaves the root
// unclosed (request still in flight when the run ends).
trace::TracePtr make_trace(std::uint64_t id, double begin_s, double end_s) {
  trace::TracePtr t = trace::trace_pool().make(id);
  const std::uint64_t root = t->open(trace::SpanKind::kRequest, "client",
                                     trace::kNoSpan, Time::from_seconds(begin_s));
  if (end_s >= 0.0) t->close(root, Time::from_seconds(end_s));
  return t;
}

TEST(FlightRecorder, RingEvictsOldestWhileHealthy) {
  FlightRecorderConfig cfg;
  cfg.ring_capacity = 4;
  FlightRecorder fr(cfg);
  for (std::uint64_t i = 0; i < 10; ++i)
    fr.offer(make_trace(i, static_cast<double>(i), static_cast<double>(i) + 0.5));

  EXPECT_EQ(fr.size(), 4u);
  EXPECT_EQ(fr.offered(), 10u);
  EXPECT_EQ(fr.evicted(), 6u);
  const auto kept = fr.window_snapshot(Time::origin(), Time::from_seconds(100.0));
  ASSERT_EQ(kept.size(), 4u);
  EXPECT_EQ(kept.front()->request_id(), 6u);  // oldest survivor, oldest first
  EXPECT_EQ(kept.back()->request_id(), 9u);
}

TEST(FlightRecorder, FreezeStopsEvictionAndThawRetrims) {
  FlightRecorderConfig cfg;
  cfg.ring_capacity = 2;
  FlightRecorder fr(cfg);
  fr.offer(make_trace(0, 0.0, 0.1));
  fr.offer(make_trace(1, 1.0, 1.1));
  fr.freeze();
  ASSERT_TRUE(fr.frozen());
  for (std::uint64_t i = 2; i < 5; ++i)
    fr.offer(make_trace(i, static_cast<double>(i), static_cast<double>(i) + 0.1));
  // Frozen: the pre-trigger half of the window is still retained.
  EXPECT_EQ(fr.size(), 5u);
  EXPECT_EQ(fr.evicted(), 0u);
  fr.thaw();
  EXPECT_FALSE(fr.frozen());
  EXPECT_EQ(fr.size(), 2u);
  EXPECT_EQ(fr.evicted(), 3u);
}

TEST(FlightRecorder, WindowSnapshotSelectsOverlappingRoots) {
  FlightRecorderConfig cfg;
  cfg.ring_capacity = 16;
  FlightRecorder fr(cfg);
  fr.offer(make_trace(0, 1.0, 2.0));
  fr.offer(make_trace(1, 3.0, 4.0));
  fr.offer(make_trace(2, 5.0, 6.0));

  const auto hit = fr.window_snapshot(Time::from_seconds(2.5), Time::from_seconds(4.5));
  ASSERT_EQ(hit.size(), 1u);
  EXPECT_EQ(hit.front()->request_id(), 1u);
  EXPECT_TRUE(fr.window_snapshot(Time::from_seconds(6.5), Time::from_seconds(7.0)).empty());
}

TEST(FlightRecorder, UnclosedRootOverlapsEveryLaterWindow) {
  FlightRecorderConfig cfg;
  cfg.ring_capacity = 16;
  FlightRecorder fr(cfg);
  fr.offer(make_trace(7, 1.0, -1.0));  // still open at run end

  const auto hit =
      fr.window_snapshot(Time::from_seconds(100.0), Time::from_seconds(200.0));
  ASSERT_EQ(hit.size(), 1u);
  EXPECT_EQ(hit.front()->request_id(), 7u);
  // ...but not windows that end before it began.
  EXPECT_TRUE(fr.window_snapshot(Time::origin(), Time::from_seconds(0.5)).empty());
}

// ------------------------------------------------------------- integration

// Shortened fig 5 log-flush scenario: the collectl flush hits the MySQL
// disk at 10 s, so 16 s covers one full millibottleneck + VLRT cycle.
core::ExperimentConfig fig5_short() {
  auto cfg = core::scenarios::fig5_logflush_sync();
  cfg.duration = Duration::seconds(16);
  cfg.trace.mode = trace::TraceMode::kSampled;  // flight recorder needs spans
  cfg.trace.sample_every_n = 20;
  return cfg;
}

// One obs-enabled run shared by the assertions below (16 s of simulated
// traffic is the expensive part; run it once).
struct Fig5Run {
  std::unique_ptr<core::NTierSystem> sys;
  core::CtqoReport ctqo;
  core::CorrelationReport corr;
};
const Fig5Run& obs_run() {
  static Fig5Run* r = [] {
    auto* out = new Fig5Run;
    auto cfg = fig5_short();
    cfg.obs.enabled = true;  // out_dir empty: detection + in-memory dump only
    out->sys = core::run_system(cfg);
    out->sys->obs()->finalize(out->sys->simulation().now());
    out->ctqo = core::analyze_ctqo(*out->sys);
    out->corr = core::correlate(*out->sys);
    return out;
  }();
  return *r;
}

TEST(ObsIntegration, DetectionOnIsByteIdenticalToDetectionOff) {
  auto base = core::run_system(fig5_short());
  EXPECT_EQ(base->obs(), nullptr);  // disabled config builds no monitor

  const Fig5Run& r = obs_run();
  ASSERT_NE(r.sys->obs(), nullptr);
  EXPECT_FALSE(r.sys->obs()->incidents().empty());  // the monitor did real work

  // Invariant 10: same events, same telemetry, same artifacts.
  EXPECT_EQ(base->simulation().events_executed(),
            r.sys->simulation().events_executed());
  EXPECT_EQ(base->registry().snapshot(), r.sys->registry().snapshot());
  EXPECT_EQ(core::run_manifest_json(*base), core::run_manifest_json(*r.sys));
  auto base_ctqo = core::analyze_ctqo(*base);
  const auto base_corr = core::correlate(*base);
  EXPECT_EQ(report::render_dashboard(*base, base_ctqo, base_corr),
            report::render_dashboard(*r.sys, r.ctqo, r.corr));  // om omitted
}

TEST(ObsIntegration, OnlineDetectionNamesTheBottleneckBeforeFirstVlrt) {
  const Fig5Run& r = obs_run();
  const IncidentMonitor* om = r.sys->obs();
  const auto& incs = om->incidents();
  ASSERT_FALSE(incs.empty());

  // Attribution: the first saturation incident names the same series the
  // offline correlation engine ranks as the bottleneck (the MySQL disk).
  const Incident* first_sat = nullptr;
  for (const auto& inc : incs)
    if (inc.kind == DetectorKind::kThreshold) { first_sat = &inc; break; }
  ASSERT_NE(first_sat, nullptr);
  EXPECT_EQ(first_sat->series, "dbdisk.busy");
  EXPECT_EQ(first_sat->series, r.corr.bottleneck_series);

  // Latency: the alarm precedes the first VLRT completion (the paper's
  // point — the cause is visible one TCP RTO before the symptom).
  const auto& vlrt = r.sys->latency().vlrt_per_window();
  Time first_vlrt = Time::origin();
  bool saw_vlrt = false;
  for (std::size_t i = 0; i < vlrt.window_count() && !saw_vlrt; ++i) {
    if (vlrt.value_at(i) > 0.0) {
      first_vlrt = vlrt.window_start(i);
      saw_vlrt = true;
    }
  }
  ASSERT_TRUE(saw_vlrt);  // fig 5 at 16 s produces VLRTs
  EXPECT_LT(incs.front().fired_at, first_vlrt);
}

TEST(ObsIntegration, RetroactiveDumpCoversTheCausalEpisode) {
  const Fig5Run& r = obs_run();
  const IncidentMonitor* om = r.sys->obs();
  ASSERT_TRUE(om->have_dump_window());
  ASSERT_FALSE(r.ctqo.episodes.empty());

  // The window [T-W, T+W] around the first fire must overlap the first
  // drop episode — the cause, not just the VLRT aftermath.
  const auto& ep = r.ctqo.episodes.front();
  EXPECT_LE(om->dump_from(), ep.end);
  EXPECT_GE(om->dump_to(), ep.start);
  // Tracing was on, so the frozen ring held span trees from the window.
  EXPECT_GT(om->dumped_traces(), 0u);
  ASSERT_NE(om->recorder(), nullptr);
  EXPECT_GT(om->recorder()->offered(), 0u);
}

TEST(ObsIntegration, SummaryAndManifestBlockAreConditional) {
  const Fig5Run& r = obs_run();
  const IncidentSummary s = r.sys->obs()->summary();
  EXPECT_EQ(s.count, r.sys->obs()->incidents().size());
  EXPECT_GE(s.count, s.open);
  EXPECT_GE(s.first_fire_s, 0.0);
  std::uint64_t by_det_total = 0;
  for (const auto& [name, n] : s.by_detector) by_det_total += n;
  EXPECT_EQ(by_det_total, s.count);

  // The manifest grows an "incidents" block only when a summary with
  // count > 0 is passed; otherwise the bytes are the incident-free ones.
  const std::string plain = core::run_manifest_json(*r.sys);
  const std::string with_incs = core::run_manifest_json(*r.sys, nullptr, &s);
  EXPECT_EQ(plain.find("\"incidents\""), std::string::npos);
  EXPECT_NE(with_incs.find("\"incidents\""), std::string::npos);
  EXPECT_NE(with_incs.find("\"count\""), std::string::npos);
}

TEST(ObsIntegration, DashboardIncidentSectionIsConditional) {
  const Fig5Run& r = obs_run();
  const std::string with_om =
      report::render_dashboard(*r.sys, r.ctqo, r.corr, r.sys->obs());
  EXPECT_NE(with_om.find("id=\"incident-data\""), std::string::npos);
  EXPECT_NE(with_om.find("<h3>Incidents ("), std::string::npos);
  EXPECT_NE(with_om.find("class='incident'"), std::string::npos);  // markers

  const std::string without_om = report::render_dashboard(*r.sys, r.ctqo, r.corr);
  EXPECT_EQ(without_om.find("id=\"incident-data\""), std::string::npos);
  EXPECT_EQ(without_om.find("<h3>Incidents ("), std::string::npos);
}

}  // namespace
}  // namespace ntier::obs
