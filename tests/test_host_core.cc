#include "cpu/host_core.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/random.h"
#include "sim/simulation.h"

namespace ntier::cpu {
namespace {

using sim::Duration;
using sim::Simulation;
using sim::Time;

constexpr double kTolS = 1e-4;  // 100 µs tolerance on completion times

struct Fixture {
  Simulation sim;
  HostCpu host;
  explicit Fixture(double cores = 1.0) : host(sim, cores) {}
};

TEST(HostCpu, SingleJobRunsAtFullSpeed) {
  Fixture f;
  auto* vm = f.host.add_vm("a");
  double done_at = -1;
  vm->submit(Duration::millis(100), [&] { done_at = f.sim.now().to_seconds(); });
  f.sim.run_all();
  EXPECT_NEAR(done_at, 0.100, kTolS);
}

TEST(HostCpu, TwoEqualJobsShareProcessor) {
  Fixture f;
  auto* vm = f.host.add_vm("a");
  std::vector<double> done;
  for (int i = 0; i < 2; ++i)
    vm->submit(Duration::millis(100), [&] { done.push_back(f.sim.now().to_seconds()); });
  f.sim.run_all();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 0.200, kTolS);
  EXPECT_NEAR(done[1], 0.200, kTolS);
}

TEST(HostCpu, StaggeredArrivalPsTimings) {
  // A(100ms) at t=0, B(100ms) at t=50ms:
  // A alone until 50ms (50 done), shares until 150ms -> A completes.
  // B then alone, completes at 200ms.
  Fixture f;
  auto* vm = f.host.add_vm("a");
  double a_done = -1, b_done = -1;
  vm->submit(Duration::millis(100), [&] { a_done = f.sim.now().to_seconds(); });
  f.sim.after(Duration::millis(50), [&] {
    vm->submit(Duration::millis(100), [&] { b_done = f.sim.now().to_seconds(); });
  });
  f.sim.run_all();
  EXPECT_NEAR(a_done, 0.150, kTolS);
  EXPECT_NEAR(b_done, 0.200, kTolS);
}

TEST(HostCpu, ShorterJobFinishesFirst) {
  Fixture f;
  auto* vm = f.host.add_vm("a");
  double short_done = -1, long_done = -1;
  vm->submit(Duration::millis(50), [&] { short_done = f.sim.now().to_seconds(); });
  vm->submit(Duration::millis(150), [&] { long_done = f.sim.now().to_seconds(); });
  f.sim.run_all();
  // Short: shares until 100ms (50 each) -> done. Long: 100 left, alone -> 200ms.
  EXPECT_NEAR(short_done, 0.100, kTolS);
  EXPECT_NEAR(long_done, 0.200, kTolS);
}

TEST(HostCpu, TwoVmsFairShare) {
  Fixture f;
  auto* a = f.host.add_vm("a");
  auto* b = f.host.add_vm("b");
  double a_done = -1, b_done = -1;
  a->submit(Duration::millis(100), [&] { a_done = f.sim.now().to_seconds(); });
  b->submit(Duration::millis(100), [&] { b_done = f.sim.now().to_seconds(); });
  f.sim.run_all();
  EXPECT_NEAR(a_done, 0.200, kTolS);
  EXPECT_NEAR(b_done, 0.200, kTolS);
}

TEST(HostCpu, WeightedShares) {
  // Weight 3 vs 1: the heavy VM gets 75% of the core.
  Fixture f;
  auto* heavy = f.host.add_vm("heavy", 1, 3.0);
  auto* light = f.host.add_vm("light", 1, 1.0);
  double h_done = -1, l_done = -1;
  heavy->submit(Duration::millis(75), [&] { h_done = f.sim.now().to_seconds(); });
  light->submit(Duration::millis(100), [&] { l_done = f.sim.now().to_seconds(); });
  f.sim.run_all();
  // heavy at 75% -> done at 100ms; light had 25 done, then alone -> 175ms.
  EXPECT_NEAR(h_done, 0.100, kTolS);
  EXPECT_NEAR(l_done, 0.175, kTolS);
}

TEST(HostCpu, IdleVmDoesNotConsumeShare) {
  Fixture f;
  auto* a = f.host.add_vm("a");
  f.host.add_vm("idle");
  double done = -1;
  a->submit(Duration::millis(100), [&] { done = f.sim.now().to_seconds(); });
  f.sim.run_all();
  EXPECT_NEAR(done, 0.100, kTolS);
}

TEST(HostCpu, VmGainsShareWhenOtherGoesIdle) {
  Fixture f;
  auto* a = f.host.add_vm("a");
  auto* b = f.host.add_vm("b");
  double a_done = -1, b_done = -1;
  a->submit(Duration::millis(50), [&] { a_done = f.sim.now().to_seconds(); });
  b->submit(Duration::millis(100), [&] { b_done = f.sim.now().to_seconds(); });
  f.sim.run_all();
  // Both at 50% until a completes at 100ms (b has 50 done); b alone -> 150ms.
  EXPECT_NEAR(a_done, 0.100, kTolS);
  EXPECT_NEAR(b_done, 0.150, kTolS);
}

TEST(HostCpu, MultiCoreVmRunsJobsInParallel) {
  Fixture f(2.0);
  auto* vm = f.host.add_vm("a", 2);
  std::vector<double> done;
  for (int i = 0; i < 2; ++i)
    vm->submit(Duration::millis(100), [&] { done.push_back(f.sim.now().to_seconds()); });
  f.sim.run_all();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 0.100, kTolS);
  EXPECT_NEAR(done[1], 0.100, kTolS);
}

TEST(HostCpu, VcpuLimitCapsParallelism) {
  // Host has 2 cores but the VM only 1 vCPU: 2 jobs still share 1 core.
  Fixture f(2.0);
  auto* vm = f.host.add_vm("a", 1);
  std::vector<double> done;
  for (int i = 0; i < 2; ++i)
    vm->submit(Duration::millis(100), [&] { done.push_back(f.sim.now().to_seconds()); });
  f.sim.run_all();
  EXPECT_NEAR(done[0], 0.200, kTolS);
}

TEST(HostCpu, WaterFillingRedistributesSurplus) {
  // 2 cores; A (2 vcpus, 3 jobs) and B (1 vcpu, 1 job), equal weight:
  // proportional split gives each 1 core; both want more than/equal
  // their cap: B capped at 1 -> B at full speed; A gets 1 core for 3 jobs.
  Fixture f(2.0);
  auto* a = f.host.add_vm("a", 2);
  auto* b = f.host.add_vm("b", 1);
  std::vector<double> a_done;
  double b_done = -1;
  for (int i = 0; i < 3; ++i)
    a->submit(Duration::millis(90), [&] { a_done.push_back(f.sim.now().to_seconds()); });
  b->submit(Duration::millis(100), [&] { b_done = f.sim.now().to_seconds(); });
  f.sim.run_all();
  EXPECT_NEAR(b_done, 0.100, kTolS);
  ASSERT_EQ(a_done.size(), 3u);
  // While b runs (100ms): a's 3 jobs share 1 core (rate 1/3 each,
  // 33.3ms attained). Then a gets both cores for 3 jobs (rate 2/3):
  // 33.3 + (t-100)*2/3 = 90 -> t = 185ms.
  EXPECT_NEAR(a_done[2], 0.185, 5e-4);
}

TEST(HostCpu, FreezeDelaysCompletion) {
  Fixture f;
  auto* vm = f.host.add_vm("a");
  double done = -1;
  vm->freeze_for(Duration::seconds(1));
  vm->submit(Duration::millis(100), [&] { done = f.sim.now().to_seconds(); });
  f.sim.run_all();
  EXPECT_NEAR(done, 1.100, kTolS);
}

TEST(HostCpu, FreezeMidJob) {
  Fixture f;
  auto* vm = f.host.add_vm("a");
  double done = -1;
  vm->submit(Duration::millis(100), [&] { done = f.sim.now().to_seconds(); });
  f.sim.after(Duration::millis(50), [&] { vm->freeze_for(Duration::millis(200)); });
  f.sim.run_all();
  // 50ms served, frozen 50->250ms, remaining 50ms -> done at 300ms.
  EXPECT_NEAR(done, 0.300, kTolS);
}

TEST(HostCpu, FreezeExtendsNotShortens) {
  Fixture f;
  auto* vm = f.host.add_vm("a");
  vm->freeze_for(Duration::millis(300));
  vm->freeze_for(Duration::millis(100));  // shorter: must not shrink
  double done = -1;
  vm->submit(Duration::millis(10), [&] { done = f.sim.now().to_seconds(); });
  f.sim.run_all();
  EXPECT_NEAR(done, 0.310, kTolS);
}

TEST(HostCpu, FrozenFlag) {
  Fixture f;
  auto* vm = f.host.add_vm("a");
  EXPECT_FALSE(vm->frozen());
  vm->freeze_for(Duration::millis(100));
  EXPECT_TRUE(vm->frozen());
  f.sim.run_until(Time::from_seconds(0.2));
  EXPECT_FALSE(vm->frozen());
}

TEST(HostCpu, FrozenVmSurrendersShare) {
  Fixture f;
  auto* a = f.host.add_vm("a");
  auto* b = f.host.add_vm("b");
  a->freeze_for(Duration::seconds(10));
  a->submit(Duration::millis(100), [] {});
  double b_done = -1;
  b->submit(Duration::millis(100), [&] { b_done = f.sim.now().to_seconds(); });
  f.sim.run_all();
  EXPECT_NEAR(b_done, 0.100, kTolS);  // b unaffected by frozen a
}

TEST(HostCpu, ZeroDemandCompletesImmediately) {
  Fixture f;
  auto* vm = f.host.add_vm("a");
  double done = -1;
  f.sim.after(Duration::millis(5), [&] {
    vm->submit(Duration::zero(), [&] { done = f.sim.now().to_seconds(); });
  });
  f.sim.run_all();
  EXPECT_NEAR(done, 0.005, 1e-6);
}

TEST(HostCpu, BusyAccountingMatchesWork) {
  Fixture f;
  auto* vm = f.host.add_vm("a");
  for (int i = 0; i < 4; ++i) vm->submit(Duration::millis(25), [] {});
  f.sim.run_all();
  EXPECT_NEAR(vm->busy_core_seconds(), 0.100, kTolS);
  EXPECT_NEAR(vm->demand_seconds(), 0.100, kTolS);
  EXPECT_NEAR(vm->stalled_seconds(), 0.0, kTolS);
}

TEST(HostCpu, DemandAccountsContention) {
  // Starved VM: wants CPU the whole time, gets half.
  Fixture f;
  auto* a = f.host.add_vm("a");
  auto* b = f.host.add_vm("b");
  a->submit(Duration::millis(100), [] {});
  b->submit(Duration::millis(100), [] {});
  f.sim.run_all();
  EXPECT_NEAR(a->busy_core_seconds(), 0.100, kTolS);
  EXPECT_NEAR(a->demand_seconds(), 0.200, kTolS);  // present for 200ms
}

TEST(HostCpu, StallAccountingDuringFreeze) {
  Fixture f;
  auto* vm = f.host.add_vm("a");
  vm->submit(Duration::millis(100), [] {});
  f.sim.after(Duration::millis(50), [&] { vm->freeze_for(Duration::millis(200)); });
  f.sim.run_all();
  // Frozen 50->250ms with 50ms of work still pending throughout.
  EXPECT_NEAR(vm->stalled_seconds(), 0.200, kTolS);
  EXPECT_NEAR(vm->busy_core_seconds(), 0.100, kTolS);
}

TEST(HostCpu, AccountingSyncsOnRead) {
  // Reading mid-interval must integrate up to now even with no event.
  Fixture f;
  auto* vm = f.host.add_vm("a");
  vm->submit(Duration::millis(100), [] {});
  f.sim.run_until(Time::from_seconds(0.05));
  EXPECT_NEAR(vm->busy_core_seconds(), 0.050, kTolS);
}

TEST(HostCpu, ManyJobsConserveWork) {
  Fixture f;
  auto* vm = f.host.add_vm("a");
  sim::Rng rng(4);
  int completed = 0;
  const int n = 500;
  double total_s = 0.0;
  for (int i = 0; i < n; ++i) {
    const auto d = rng.exp_duration(Duration::micros(800));
    total_s += d.to_seconds();
    f.sim.after(rng.exp_duration(Duration::millis(1)), [&, d] {
      vm->submit(d, [&] { ++completed; });
    });
  }
  f.sim.run_all();
  EXPECT_EQ(completed, n);
  EXPECT_NEAR(vm->busy_core_seconds(), total_s, 0.01);
}

TEST(HostCpu, FractionalCoreCapacity) {
  Fixture f(0.5);
  auto* vm = f.host.add_vm("a");
  double done = -1;
  vm->submit(Duration::millis(100), [&] { done = f.sim.now().to_seconds(); });
  f.sim.run_all();
  EXPECT_NEAR(done, 0.200, kTolS);
}

}  // namespace
}  // namespace ntier::cpu
